//! End-to-end tests of the DiOMP runtime: allocation, RMA, fence,
//! groups, OMPCCL, asymmetric memory, target regions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diomp_core::{
    group_merge, group_split, AllocKind, Binding, Conduit, DiompConfig, DiompError, DiompRuntime,
    DiompTarget, ReduceOp,
};
use diomp_device::{HostBuf, HostId, KernelCost, MapKind};
use diomp_sim::{ClusterSpec, Dur, PlatformSpec, SimTime};

fn builder_a(nodes: usize) -> diomp_core::DiompConfigBuilder {
    DiompConfig::builder_on(PlatformSpec::platform_a(), nodes).with_heap(4 << 20)
}

fn cfg_a(nodes: usize) -> DiompConfig {
    builder_a(nodes).build()
}

#[test]
fn ring_put_fence_delivers_neighbour_data() {
    // The paper's Listing-1 pattern: every rank puts to its right
    // neighbour, one fence, then everyone reads what the left wrote.
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let n = rank.nranks();
        let ptr = rank.alloc_sym(ctx, 4096).unwrap();
        let me = rank.rank as u8;
        rank.write_local(rank.primary(), ptr, 0, &[me; 64]);
        rank.barrier(ctx);
        let right = (rank.rank + 1) % n;
        rank.put(ctx, right, ptr, 1024, ptr, 0, 64).unwrap();
        rank.fence(ctx);
        rank.barrier(ctx);
        let mut got = [0u8; 64];
        rank.read_local(rank.primary(), ptr, 1024, &mut got);
        let left = ((rank.rank + n - 1) % n) as u8;
        assert_eq!(got, [left; 64], "rank {me}");
    })
    .unwrap();
}

#[test]
fn get_pulls_remote_symmetric_data() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, 1024).unwrap();
        rank.write_local(rank.primary(), ptr, 0, &[rank.rank as u8 + 1; 32]);
        rank.barrier(ctx);
        if rank.rank == 0 {
            let n = rank.nranks();
            rank.get(ctx, n - 1, ptr, 0, ptr, 512, 32).unwrap();
            rank.fence(ctx);
            let mut got = [0u8; 32];
            rank.read_local(rank.primary(), ptr, 512, &mut got);
            assert_eq!(got, [n as u8; 32]);
        }
        rank.barrier(ctx);
    })
    .unwrap();
}

#[test]
fn symmetric_offsets_are_identical_across_ranks() {
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    DiompRuntime::run(cfg_a(2), move |ctx, rank| {
        let a = rank.alloc_sym(ctx, 1000).unwrap();
        let b = rank.alloc_sym(ctx, 2000).unwrap();
        seen2.lock().push((rank.rank, a.off, b.off));
        assert_ne!(a.off, b.off);
    })
    .unwrap();
    let seen = seen.lock();
    assert_eq!(seen.len(), 8);
    let (_, a0, b0) = seen[0];
    for &(r, a, b) in seen.iter() {
        assert_eq!((a, b), (a0, b0), "rank {r} saw different offsets");
    }
}

#[test]
fn sym_heap_exhaustion_reports_out_of_global_memory() {
    DiompRuntime::run(cfg_a(1), |ctx, rank| {
        // Heap is 4 MiB with 25% asym ⇒ 3 MiB symmetric.
        let r = rank.alloc_sym(ctx, 16 << 20);
        assert!(matches!(r, Err(DiompError::OutOfGlobalMemory { .. })));
        // The heap still works afterwards.
        let ok = rank.alloc_sym(ctx, 4096);
        assert!(ok.is_ok());
    })
    .unwrap();
}

#[test]
fn buddy_free_allows_reuse_across_phases() {
    let cfg = builder_a(1).with_allocator(AllocKind::Buddy).build();
    DiompRuntime::run(cfg, |ctx, rank| {
        let a = rank.alloc_sym(ctx, 1 << 20).unwrap();
        rank.free_sym(ctx, a);
        let b = rank.alloc_sym(ctx, 1 << 20).unwrap();
        assert_eq!(a.off, b.off, "buddy must coalesce and reuse the block");
    })
    .unwrap();
}

#[test]
fn asym_alloc_two_stage_access_and_cache() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        // Each rank allocates a different size (the asymmetric case of
        // Fig. 2).
        let mine = rank.alloc_asym(ctx, 256 * (rank.rank as u64 + 1)).unwrap();
        let scratch = rank.alloc_sym(ctx, 4096).unwrap();
        // Publish a pattern in my asymmetric region.
        let pattern = vec![rank.rank as u8 + 40; 64];
        let my_dev = rank.primary();
        let addr = mine.my_data_off + rank.shared.seg_base[my_dev];
        rank.shared.world.devs.dev(my_dev).mem.write(addr, &pattern).unwrap();
        rank.barrier(ctx);

        if rank.rank == 0 {
            let target = rank.nranks() - 1;
            // First access: cache miss ⇒ wrapper fetch + data get.
            let t0 = ctx.now();
            rank.get_asym(ctx, target, &mine, 0, scratch, 0, 64).unwrap();
            rank.fence(ctx);
            let cold = ctx.now().since(t0);
            let mut got = [0u8; 64];
            rank.read_local(my_dev, scratch, 0, &mut got);
            assert_eq!(got, [target as u8 + 40; 64]);

            // Second access: cache hit ⇒ single stage, measurably faster.
            let t1 = ctx.now();
            rank.get_asym(ctx, target, &mine, 0, scratch, 128, 64).unwrap();
            rank.fence(ctx);
            let warm = ctx.now().since(t1);
            assert!(
                warm.as_nanos() * 3 < cold.as_nanos() * 2,
                "cached access {warm} should be well under cold {cold}"
            );
            let (hits, misses) = rank.cache.stats();
            assert_eq!((hits, misses), (1, 1));
        }
        rank.barrier(ctx);
        rank.free_asym(ctx, mine);
    })
    .unwrap();
}

#[test]
fn put_asym_writes_into_remote_region() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let mine = rank.alloc_asym(ctx, 512).unwrap();
        let src = rank.alloc_sym(ctx, 256).unwrap();
        rank.write_local(rank.primary(), src, 0, &[7u8; 100]);
        rank.barrier(ctx);
        if rank.rank == 1 {
            rank.put_asym(ctx, 5, &mine, 16, src, 0, 100).unwrap();
            rank.fence(ctx);
        }
        rank.barrier(ctx);
        if rank.rank == 5 {
            let dev = rank.primary();
            let addr = rank.shared.seg_base[dev] + mine.my_data_off + 16;
            let mut got = [0u8; 100];
            rank.shared.world.devs.dev(dev).mem.read(addr, &mut got).unwrap();
            assert_eq!(got, [7u8; 100]);
        }
        rank.barrier(ctx);
    })
    .unwrap();
}

#[test]
fn intra_node_put_uses_fast_path() {
    // Same-node neighbour put (P2P) must beat the inter-node put.
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        if rank.rank == 0 {
            let ptr = rank.alloc_sym(ctx, 1 << 20).unwrap();
            let len = 256 << 10;
            let t0 = ctx.now();
            rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap(); // same node (GPU 1)
            rank.fence(ctx);
            let near = ctx.now().since(t0);
            let t1 = ctx.now();
            rank.put(ctx, 4, ptr, 0, ptr, 0, len).unwrap(); // other node
            rank.fence(ctx);
            let far = ctx.now().since(t1);
            assert!(
                near.as_nanos() * 3 < far.as_nanos(),
                "NVLink P2P {near} must be ≫ faster than NIC {far}"
            );
        } else {
            let _ = rank.alloc_sym(ctx, 1 << 20).unwrap();
        }
        rank.barrier(ctx);
    })
    .unwrap();
}

#[test]
fn disabling_p2p_falls_back_to_ipc_and_is_slower() {
    let measure = |use_p2p: bool| -> u64 {
        let out = Arc::new(AtomicU64::new(0));
        let out2 = out.clone();
        let mut cfg = builder_a(1);
        if !use_p2p {
            cfg = cfg.without_p2p();
        }
        let cfg = cfg.build();
        DiompRuntime::run(cfg, move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, 1 << 20).unwrap();
            if rank.rank == 0 {
                let t0 = ctx.now();
                rank.put(ctx, 2, ptr, 0, ptr, 0, 512 << 10).unwrap();
                rank.fence(ctx);
                out2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
            }
            rank.barrier(ctx);
        })
        .unwrap();
        out.load(Ordering::Relaxed)
    };
    let p2p = measure(true);
    let ipc = measure(false);
    assert!(ipc > 2 * p2p, "IPC staging ({ipc} ns) must cost more than P2P ({p2p} ns)");
}

#[test]
fn gpi_conduit_works_on_infiniband_platform() {
    let cfg = DiompConfig::builder_on(PlatformSpec::platform_c(), 4)
        .with_heap(4 << 20)
        .with_conduit(Conduit::Gpi2)
        .build();
    DiompRuntime::run(cfg, |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, 4096).unwrap();
        rank.write_local(rank.primary(), ptr, 0, &[rank.rank as u8 + 1; 32]);
        rank.barrier(ctx);
        let right = (rank.rank + 1) % rank.nranks();
        rank.put(ctx, right, ptr, 256, ptr, 0, 32).unwrap();
        rank.fence(ctx);
        rank.barrier(ctx);
        let mut got = [0u8; 32];
        rank.read_local(rank.primary(), ptr, 256, &mut got);
        let left = (rank.rank + rank.nranks() - 1) % rank.nranks();
        assert_eq!(got, [left as u8 + 1; 32]);
    })
    .unwrap();
}

#[test]
fn group_split_scopes_barriers_and_collectives() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let world = rank.shared.world_group();
        // Split into node groups (color = node).
        let node = rank.shared.world.node_of(rank.rank) as u32;
        let g = group_split(ctx, &rank.shared.groups, &world, rank.rank, node, rank.rank as u32);
        assert_eq!(g.size(), 4, "4 GPUs per node on platform A");
        // Group-scoped allreduce over OMPCCL.
        let ptr = rank.alloc_sym(ctx, 256).unwrap();
        let one: Vec<u8> = 1.0f64.to_le_bytes().repeat(4).to_vec();
        let vals: Vec<u8> = one.to_vec();
        rank.write_local(rank.primary(), ptr, 0, &vals);
        rank.barrier(ctx);
        rank.allreduce(ctx, &g, ptr, 32, ReduceOp::SumF64);
        let mut got = [0u8; 32];
        rank.read_local(rank.primary(), ptr, 0, &mut got);
        for c in got.chunks_exact(8) {
            let v = f64::from_le_bytes(c.try_into().unwrap());
            assert_eq!(v, 4.0, "sum over the node group only");
        }
        rank.barrier(ctx);
    })
    .unwrap();
}

#[test]
fn group_merge_recomposes_two_groups() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let world = rank.shared.world_group();
        let half = (rank.rank >= 4) as u32;
        let g = group_split(ctx, &rank.shared.groups, &world, rank.rank, half, 0);
        assert_eq!(g.size(), 4);
        let other: Vec<usize> = if half == 0 { (4..8).collect() } else { (0..4).collect() };
        let g_other = rank.shared.groups.get_or_create(other);
        let merged = group_merge(ctx, &rank.shared.groups, &g, &g_other, rank.rank);
        assert_eq!(merged.size(), 8);
        rank.barrier_group(ctx, &merged);
    })
    .unwrap();
}

#[test]
fn ompccl_world_bcast_and_reduce() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let world = rank.shared.world_group();
        let ptr = rank.alloc_sym(ctx, 1024).unwrap();
        if rank.rank == 3 {
            let vals: Vec<u8> = (0..32).flat_map(|i| (i as f64).to_le_bytes()).collect();
            rank.write_local(rank.primary(), ptr, 0, &vals);
        }
        rank.barrier(ctx);
        rank.bcast(ctx, &world, 3, ptr, 256);
        let mut got = [0u8; 256];
        rank.read_local(rank.primary(), ptr, 0, &mut got);
        for (i, c) in got.chunks_exact(8).enumerate() {
            assert_eq!(f64::from_le_bytes(c.try_into().unwrap()), i as f64);
        }
        rank.barrier(ctx);
    })
    .unwrap();
}

#[test]
fn single_process_multi_gpu_binding_runs_collectives_over_all_devices() {
    // Paper §3.3: RankPerNode binding — 1 rank drives 4 GPUs; OMPCCL
    // still reduces across all 8 devices of the 2-node job.
    let cfg = builder_a(2).with_binding(Binding::RankPerNode).build();
    DiompRuntime::run(cfg, |ctx, rank| {
        assert_eq!(rank.nranks(), 2);
        assert_eq!(rank.my_devices().len(), 4);
        let ptr = rank.alloc_sym(ctx, 256).unwrap();
        for d in rank.my_devices() {
            let vals: Vec<u8> = 1.0f64.to_le_bytes().to_vec();
            let addr = rank.dev_addr(d, ptr.off);
            rank.shared.world.devs.dev(d).mem.write(addr, &vals).unwrap();
        }
        rank.barrier(ctx);
        let world = rank.shared.world_group();
        rank.allreduce(ctx, &world, ptr, 8, ReduceOp::SumF64);
        for d in rank.my_devices() {
            let mut got = [0u8; 8];
            let addr = rank.dev_addr(d, ptr.off);
            rank.shared.world.devs.dev(d).mem.read(addr, &mut got).unwrap();
            assert_eq!(f64::from_le_bytes(got), 8.0, "8 devices contributed");
        }
    })
    .unwrap();
}

#[test]
fn target_region_maps_into_global_segment_and_is_remotely_accessible() {
    DiompRuntime::run(cfg_a(2), |ctx, rank| {
        let tgt = DiompTarget::new(rank);
        let host = HostBuf::from_f64(&[rank.rank as f64; 16]);
        let ptr = rank.target_enter(ctx, &tgt, HostId(1), &host, MapKind::ToFrom).unwrap();
        // Kernel: add 1.0 to every element on the device.
        let dev = rank.primary();
        let addr = rank.dev_addr(dev, ptr.off);
        rank.target_launch(
            ctx,
            dev,
            &KernelCost::Fixed(Dur::micros(3.0)),
            Some(Box::new(move |mem| {
                mem.with_slice_mut(addr, 128, |s| {
                    for c in s.chunks_exact_mut(8) {
                        let v = f64::from_le_bytes(c[..8].try_into().unwrap()) + 1.0;
                        c.copy_from_slice(&v.to_le_bytes());
                    }
                })
                .unwrap();
            })),
        );
        rank.barrier(ctx);
        // The mapped object is remotely addressable with NO extra
        // registration: rank 0 reads rank 3's mapped buffer via ompx_get.
        if rank.rank == 0 {
            let scratch = rank.alloc_sym(ctx, 128).unwrap();
            rank.get(ctx, 3, ptr, 0, scratch, 0, 128).unwrap();
            rank.fence(ctx);
            let mut got = [0u8; 128];
            rank.read_local(dev, scratch, 0, &mut got);
            for c in got.chunks_exact(8) {
                assert_eq!(f64::from_le_bytes(c.try_into().unwrap()), 4.0);
            }
        } else {
            let _ = rank.alloc_sym(ctx, 128).unwrap();
        }
        rank.barrier(ctx);
        rank.target_exit(ctx, &tgt, HostId(1), &host, MapKind::ToFrom).unwrap();
        // tofrom copied the updated data back to the host.
        assert_eq!(host.to_f64(), vec![rank.rank as f64 + 1.0; 16]);
    })
    .unwrap();
}

#[test]
fn diomp_runs_are_deterministic() {
    let run = || -> u64 {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        DiompRuntime::run(cfg_a(2), move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, 64 << 10).unwrap();
            for round in 0..3 {
                let to = (rank.rank + round + 1) % rank.nranks();
                rank.put(ctx, to, ptr, 0, ptr, 0, 8 << 10).unwrap();
            }
            rank.fence(ctx);
            rank.barrier(ctx);
            if rank.rank == 0 {
                t2.store(ctx.now().nanos(), Ordering::Relaxed);
            }
        })
        .unwrap();
        t.load(Ordering::Relaxed)
    };
    assert_eq!(run(), run());
}

#[test]
fn cost_only_mode_runs_the_same_code_path() {
    // Paper-scale configs run CostOnly; the control flow must be
    // identical, with no bytes moved.
    let cfg = DiompConfig::builder(ClusterSpec::full_nodes(PlatformSpec::platform_b(), 2))
        .with_mode(diomp_device::DataMode::CostOnly)
        .with_heap(1 << 30)
        .build(); // 1 GiB heap, no real backing
    DiompRuntime::run(cfg, |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, 256 << 20).unwrap(); // 256 MiB "allocation"
        let right = (rank.rank + 1) % rank.nranks();
        rank.put(ctx, right, ptr, 0, ptr, 0, 64 << 20).unwrap();
        rank.fence(ctx);
        rank.barrier(ctx);
        assert!(ctx.now() > SimTime::ZERO);
    })
    .unwrap();
}
