//! Integration tests for the chunked multi-queue RMA pipeline and the
//! batched `wait_all` fence (ISSUE 1 acceptance: byte identity, no-later
//! completion, trace determinism, scheduler-entry reduction).

use std::sync::Arc;

use diomp_core::{
    Conduit, DiompConfig, DiompConfigBuilder, DiompRank, DiompRuntime, PipelineConfig, PtrCache,
};
use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, PlatformSpec, Sim, SimReport};
use parking_lot::Mutex;

/// Two single-GPU nodes: rank 0 and rank 1 are inter-node neighbours.
fn two_nodes(platform: PlatformSpec) -> DiompConfigBuilder {
    DiompConfig::builder(ClusterSpec { platform, nodes: 2, gpus_per_node: 1 })
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(31) + 7) as u8).collect()
}

/// Rank 0 puts `len` bytes into rank 1, fences, and rank 1 reads them
/// back after a barrier. Returns (bytes seen at rank 1, report).
fn put_roundtrip(cfg: DiompConfig, len: u64) -> (Vec<u8>, SimReport) {
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let rep = DiompRuntime::run(cfg, move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, len).unwrap();
        if rank.rank == 0 {
            rank.write_local(rank.primary(), ptr, 0, &pattern(len as usize));
        }
        rank.barrier(ctx);
        if rank.rank == 0 {
            rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
            rank.fence(ctx);
        }
        rank.barrier(ctx);
        if rank.rank == 1 {
            let mut got = vec![0u8; len as usize];
            rank.read_local(rank.primary(), ptr, 0, &mut got);
            *out2.lock() = got;
        }
    })
    .unwrap();
    let bytes = out.lock().clone();
    (bytes, rep)
}

/// Like `put_roundtrip` but rank 0 *gets* from rank 1.
fn get_roundtrip(cfg: DiompConfig, len: u64) -> Vec<u8> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    DiompRuntime::run(cfg, move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, len).unwrap();
        if rank.rank == 1 {
            rank.write_local(rank.primary(), ptr, 0, &pattern(len as usize));
        }
        rank.barrier(ctx);
        if rank.rank == 0 {
            rank.get(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
            rank.fence(ctx);
            let mut got = vec![0u8; len as usize];
            rank.read_local(rank.primary(), ptr, 0, &mut got);
            *out2.lock() = got;
        }
        rank.barrier(ctx);
    })
    .unwrap();
    let bytes = out.lock().clone();
    bytes
}

#[test]
fn chunked_put_is_byte_identical_to_unchunked_gasnet() {
    // 1 MiB in 128 KiB chunks: chunks are >= the 16 KiB anomaly floor on
    // Platform A, so this exercises the host-staged pipeline regime.
    let len = 1 << 20;
    let chunked = two_nodes(PlatformSpec::platform_a())
        .with_pipeline(PipelineConfig { chunk_bytes: 128 << 10, max_inflight: 3, n_queues: 4 })
        .build();
    let (got_chunked, _) = put_roundtrip(chunked, len);
    let (got_mono, _) = put_roundtrip(two_nodes(PlatformSpec::platform_a()).build(), len);
    assert_eq!(got_chunked, pattern(len as usize));
    assert_eq!(got_chunked, got_mono);
}

#[test]
fn chunked_put_is_byte_identical_direct_regime() {
    // Platform B has no put anomaly: chunks inject straight from device.
    let len = 1 << 20;
    let chunked = two_nodes(PlatformSpec::platform_b())
        .with_pipeline(PipelineConfig { chunk_bytes: 64 << 10, max_inflight: 4, n_queues: 4 })
        .build();
    let (got, _) = put_roundtrip(chunked, len);
    assert_eq!(got, pattern(len as usize));
}

#[test]
fn chunked_get_is_byte_identical_to_unchunked() {
    let len = 768 << 10;
    let chunked = two_nodes(PlatformSpec::platform_a())
        .with_pipeline(PipelineConfig {
            chunk_bytes: 100 << 10, // deliberately non-divisor: exercises the tail chunk
            max_inflight: 2,
            n_queues: 2,
        })
        .build();
    let got_chunked = get_roundtrip(chunked, len);
    let got_mono = get_roundtrip(two_nodes(PlatformSpec::platform_a()).build(), len);
    assert_eq!(got_chunked, pattern(len as usize));
    assert_eq!(got_chunked, got_mono);
}

#[test]
fn chunked_gpi_put_round_robins_queues_and_fence_drains_them_all() {
    // Platform C is the InfiniBand system with a GPI-2 model. 4 queues:
    // with the old queue-0-only fence this would leave completions
    // unawaited on queues 1–3.
    let len = 512 << 10;
    let cfg = two_nodes(PlatformSpec::platform_c())
        .with_conduit(Conduit::Gpi2)
        .with_pipeline(PipelineConfig { chunk_bytes: 64 << 10, max_inflight: 4, n_queues: 4 })
        .build();
    let (got, _) = put_roundtrip(cfg, len);
    assert_eq!(got, pattern(len as usize));
    let got_get = get_roundtrip(
        two_nodes(PlatformSpec::platform_c())
            .with_conduit(Conduit::Gpi2)
            .with_pipeline(PipelineConfig { chunk_bytes: 96 << 10, max_inflight: 4, n_queues: 3 })
            .build(),
        len,
    );
    assert_eq!(got_get, pattern(len as usize));
}

/// Simulated completion time of a `len`-byte put + fence on `cfg`.
fn put_fence_us(cfg: DiompConfig, len: u64) -> f64 {
    let us = Arc::new(Mutex::new(0.0f64));
    let us2 = us.clone();
    DiompRuntime::run(cfg, move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, len).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            let t0 = ctx.now();
            rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
            rank.fence(ctx);
            *us2.lock() = ctx.now().since(t0).as_us();
        }
        rank.barrier(ctx);
    })
    .unwrap();
    let v = *us.lock();
    v
}

#[test]
fn pipelined_64mib_put_is_no_later_than_unpipelined() {
    // Platform A, inter-node, 64 MiB: the direct put is capped at
    // 3.2 GB/s by the documented Fig. 4a anomaly; the staged pipeline
    // overlaps D2H chunk copies with host-source NIC injections that the
    // cap does not affect. The pipelined put must finish no later — in
    // fact several times earlier.
    let len = 64 << 20;
    let base = |p: PlatformSpec| two_nodes(p).with_mode(DataMode::CostOnly).with_heap(256 << 20);
    let mono_us = put_fence_us(base(PlatformSpec::platform_a()).build(), len);
    let piped_us = put_fence_us(
        base(PlatformSpec::platform_a()).with_pipeline(PipelineConfig::enabled()).build(),
        len,
    );
    assert!(
        piped_us <= mono_us,
        "pipelined put must not be slower: {piped_us:.1}µs vs {mono_us:.1}µs"
    );
    assert!(
        piped_us * 3.0 < mono_us,
        "staged pipeline should beat the anomaly-capped put by a wide margin: \
         {piped_us:.1}µs vs {mono_us:.1}µs"
    );
}

/// Simulated completion time of a `len`-byte get + fence on `cfg`.
fn get_fence_us(cfg: DiompConfig, len: u64) -> f64 {
    let us = Arc::new(Mutex::new(0.0f64));
    let us2 = us.clone();
    DiompRuntime::run(cfg, move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, len).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            let t0 = ctx.now();
            rank.get(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
            rank.fence(ctx);
            *us2.lock() = ctx.now().since(t0).as_us();
        }
        rank.barrier(ctx);
    })
    .unwrap();
    let v = *us.lock();
    v
}

#[test]
fn staged_get_on_host_capped_platform_is_byte_identical() {
    // Platform A is host-capped (Fig. 4a): large tuned gets route
    // through host bounce buffers + H2D uploads. Byte identity must hold
    // across the staging, including non-divisor tails and slot reuse.
    let len = 900 << 10;
    let staged = two_nodes(PlatformSpec::platform_a())
        .with_pipeline(PipelineConfig {
            chunk_bytes: 96 << 10, // 9 chunks + tail across 2 slots
            max_inflight: 2,
            n_queues: 1,
        })
        .build();
    let got = get_roundtrip(staged, len);
    assert_eq!(got, pattern(len as usize));
    let got_mono = get_roundtrip(two_nodes(PlatformSpec::platform_a()).build(), len);
    assert_eq!(got, got_mono);
}

#[test]
fn staged_get_costs_at_most_a_few_percent_over_monolithic() {
    // The get side is not bandwidth-capped, so staging cannot win
    // bandwidth on the current model — it must at least not lose it: the
    // H2D uploads overlap later chunks' wire time and only the last
    // upload extends the tail.
    let len = 64 << 20;
    let base = |p: PlatformSpec| two_nodes(p).with_mode(DataMode::CostOnly).with_heap(256 << 20);
    let mono_us = get_fence_us(base(PlatformSpec::platform_a()).build(), len);
    let tuned = PipelineConfig::auto(&PlatformSpec::platform_a(), Conduit::GasnetEx);
    let staged_us =
        get_fence_us(base(PlatformSpec::platform_a()).with_pipeline(tuned).build(), len);
    assert!(
        staged_us <= mono_us * 1.05,
        "staged get must stay within 5% of monolithic: {staged_us:.1}µs vs {mono_us:.1}µs"
    );
}

#[test]
fn staged_get_stays_nonblocking_and_overlaps_compute() {
    // The staged regime must honour get_dev's non-blocking contract:
    // issuing a large staged get costs only the per-chunk injection
    // overheads (the wire time and the H2D uploads happen behind the
    // task's back), so compute issued right after the get hides under
    // the transfer instead of serialising with it.
    let len = 32 << 20;
    let base = || {
        two_nodes(PlatformSpec::platform_a())
            .with_mode(DataMode::CostOnly)
            .with_heap(256 << 20)
            .tuned()
            .build()
    };
    let get_alone_us = get_fence_us(base(), len);
    let times = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let times2 = times.clone();
    DiompRuntime::run(base(), move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, len).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            let t0 = ctx.now();
            rank.get(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
            let issue_us = ctx.now().since(t0).as_us();
            // 1 ms of "compute" while the chunks stream in.
            ctx.delay(diomp_sim::Dur::micros(1000.0));
            rank.fence(ctx);
            *times2.lock() = (issue_us, ctx.now().since(t0).as_us());
        }
        rank.barrier(ctx);
    })
    .unwrap();
    let (issue_us, total_us) = *times.lock();
    assert!(
        issue_us < get_alone_us * 0.2,
        "issuing a staged get must not wait for the wire: {issue_us:.0}µs vs \
         {get_alone_us:.0}µs end-to-end"
    );
    assert!(
        total_us < get_alone_us + 200.0,
        "1 ms of compute must hide under the {get_alone_us:.0}µs transfer, got {total_us:.0}µs"
    );
}

#[test]
fn tuned_config_beats_capped_put_and_respects_precedence() {
    // The tuned build must clear the Fig. 4a put cap like the
    // explicit pipeline does, with parameters read off the tables…
    let len = 64 << 20;
    let base = |p: PlatformSpec| two_nodes(p).with_mode(DataMode::CostOnly).with_heap(256 << 20);
    let mono_us = put_fence_us(base(PlatformSpec::platform_a()).build(), len);
    let tuned_us = put_fence_us(base(PlatformSpec::platform_a()).tuned().build(), len);
    assert!(
        tuned_us * 3.0 < mono_us,
        "tuned put must clear the anomaly cap: {tuned_us:.1}µs vs {mono_us:.1}µs"
    );
    // …and the precedence chain is explicit > tuned > disabled.
    let b = base(PlatformSpec::platform_a()).tuned();
    let cfg = b.clone().build();
    assert!(cfg.pipeline.pipelines(cfg.pipeline.chunk_bytes + 1), "tuned enables the pipeline");
    assert!(matches!(cfg.coll_engine, diomp_core::CollEngine::Auto(_)));
    let overridden = b.with_pipeline(PipelineConfig::disabled()).build();
    assert_eq!(overridden.pipeline, PipelineConfig::disabled(), "explicit beats tuned");
    let mono_after_override_us = put_fence_us(
        base(PlatformSpec::platform_a()).tuned().with_pipeline(PipelineConfig::disabled()).build(),
        len,
    );
    assert_eq!(mono_after_override_us, mono_us, "explicit opt-out restores the published curve");
}

#[test]
fn tuned_roundtrips_are_byte_identical_on_every_platform_and_conduit() {
    let len = (1 << 20) + 4097; // above every tuned chunk, ragged tail
    for (platform, conduit) in [
        (PlatformSpec::platform_a(), Conduit::GasnetEx),
        (PlatformSpec::platform_b(), Conduit::GasnetEx),
        (PlatformSpec::platform_c(), Conduit::GasnetEx),
        (PlatformSpec::platform_c(), Conduit::Gpi2),
    ] {
        let cfg = || {
            two_nodes(platform.clone()).with_conduit(conduit).tuned().with_heap(16 << 20).build()
        };
        let (put_bytes, _) = put_roundtrip(cfg(), len);
        assert_eq!(put_bytes, pattern(len as usize), "{} {conduit:?} put", platform.name);
        let get_bytes = get_roundtrip(cfg(), len);
        assert_eq!(get_bytes, pattern(len as usize), "{} {conduit:?} get", platform.name);
    }
}

/// Run a traced put workload with chunking enabled; returns the trace
/// plus the scheduler counters.
fn traced_chunked_run() -> (Vec<String>, u64, diomp_sim::SimTime) {
    let mut sim = Sim::new();
    sim.enable_trace();
    let cfg = two_nodes(PlatformSpec::platform_a())
        .with_pipeline(PipelineConfig { chunk_bytes: 32 << 10, max_inflight: 2, n_queues: 2 })
        .build();
    let shared = DiompRuntime::build(&sim, cfg);
    for r in 0..shared.world.nranks {
        let shared = shared.clone();
        sim.spawn(format!("diomp-rank{r}"), move |ctx| {
            let mut rank = DiompRank { shared, rank: r, cache: PtrCache::new(), rma_retries: 0 };
            let len = 256 << 10;
            let ptr = rank.alloc_sym(ctx, len).unwrap();
            if rank.rank == 0 {
                rank.write_local(rank.primary(), ptr, 0, &pattern(len as usize));
            }
            rank.barrier(ctx);
            if rank.rank == 0 {
                rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
                rank.fence(ctx);
            }
            rank.barrier(ctx);
        });
    }
    let rep = sim.run().unwrap();
    (rep.trace.iter().map(|t| t.to_string()).collect(), rep.entries_processed, rep.end_time)
}

#[test]
fn chunked_runs_are_trace_deterministic() {
    let (trace_a, entries_a, end_a) = traced_chunked_run();
    let (trace_b, entries_b, end_b) = traced_chunked_run();
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "chunked pipeline must stay deterministic");
    assert_eq!(entries_a, entries_b);
    assert_eq!(end_a, end_b);
}

/// N small puts + one fence; returns the run report.
fn many_put_fence(cfg: DiompConfig, n: usize) -> SimReport {
    DiompRuntime::run(cfg, move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, 256 << 10).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            // 256 KiB per put: the NIC stays busy ~11 µs per message while
            // the initiator only pays ~1.5 µs, so a deep backlog of
            // completions is still in flight when the fence starts.
            for _ in 0..n {
                rank.put(ctx, 1, ptr, 0, ptr, 0, 256 << 10).unwrap();
            }
            rank.fence(ctx);
        }
        rank.barrier(ctx);
    })
    .unwrap()
}

#[test]
fn batched_fence_processes_fewer_entries_at_identical_virtual_time() {
    let n = 300;
    let cfg = || two_nodes(PlatformSpec::platform_a()).with_mode(DataMode::CostOnly);
    let batched = many_put_fence(cfg().build(), n);
    let unbatched = many_put_fence(cfg().without_batched_fence().build(), n);
    assert_eq!(
        batched.end_time, unbatched.end_time,
        "fence batching must not change virtual-time results"
    );
    // Each put tracks two events (local + remote): the per-event fence
    // pays roughly one wake per event, the batched fence one wake total.
    assert!(
        batched.entries_processed + n as u64 <= unbatched.entries_processed,
        "expected ≥{n} fewer scheduler entries: batched {} vs unbatched {}",
        batched.entries_processed,
        unbatched.entries_processed
    );
}
