//! The canonical chaos acceptance scenario (the tentpole's end-to-end
//! criterion): one degraded rail, one compute straggler, and one
//! lost-then-retried notification — replayed against every collective
//! engine. Each run must complete, stay byte-identical to the sequential
//! reference, and keep its virtual-time inflation inside the bound the
//! degraded bandwidth prices.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use diomp_core::{
    AutoConfig, CollEngine, Conduit, DiompConfig, DiompError, DiompRank, DiompRuntime, FabricError,
    PtrCache, RankHealth, RingConfig,
};
use diomp_fabric::ReduceOp;
use diomp_sim::{
    fault_key, ClusterSpec, CtrlFault, Dur, FaultPlan, PlatformSpec, Sim, SimTime, Wait,
};
use parking_lot::Mutex;

const NRANKS: usize = 4;
const NOTIFY_ID: u32 = 7;
const NOTIFY_LEN: u64 = 4 << 10;

fn cfg(engine: CollEngine) -> DiompConfig {
    let platform = PlatformSpec::platform_c();
    DiompConfig::builder(ClusterSpec { platform, nodes: NRANKS, gpus_per_node: 1 })
        .with_conduit(Conduit::Gpi2)
        .with_heap(8 << 20)
        .with_coll_engine(engine)
        .build()
}

/// The canonical plan: rank 0's NIC degraded to 40 % of nominal for the
/// whole run, rank 1 a 1.5× compute straggler, and the first
/// notification rank 0 posts toward rank 1 silently dropped.
fn canonical_plan() -> FaultPlan {
    // Probe a throwaway world for the NIC resource id — topology
    // construction is deterministic, so the id is stable across sims.
    let sim = Sim::new();
    let shared = DiompRuntime::build(&sim, cfg(CollEngine::Profile));
    let nic = shared.world.devs.dev(0).nic;
    drop(sim);
    FaultPlan::new()
        .degrade_link(nic, SimTime::ZERO, SimTime(u64::MAX), 400)
        .straggle("diomp-rank1", 1500)
        .ctrl_fault(fault_key("gpi-notify", 1, NOTIFY_ID as u64), CtrlFault::Drop)
}

/// Run the scenario under `plan` and return the end-of-sim virtual time.
///
/// The scenario: a notified put from rank 0 to rank 1 recovered by the
/// timeout-and-resend protocol when the notification is lost, followed
/// by a world allreduce of `len` integer-valued f64 bytes on the
/// configured engine, byte-checked against the sequential sum on every
/// rank.
fn run_scenario(engine: CollEngine, plan: FaultPlan, len: u64, tag: &str) -> SimTime {
    let faulty = !plan.is_empty();
    let mut sim = Sim::new();
    sim.set_fault_plan(plan);
    let shared = DiompRuntime::build(&sim, cfg(engine));
    let resend = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let timed_out = Arc::new(AtomicBool::new(false));
    let sums: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); NRANKS]));
    for r in 0..NRANKS {
        let shared = shared.clone();
        let (resend, done, timed_out) = (resend.clone(), done.clone(), timed_out.clone());
        let sums = sums.clone();
        sim.spawn(format!("diomp-rank{r}"), move |ctx| {
            let mut rank = DiompRank { shared, rank: r, cache: PtrCache::new(), rma_retries: 0 };
            let nptr = rank.alloc_sym(ctx, NOTIFY_LEN).unwrap();
            let aptr = rank.alloc_sym(ctx, len).unwrap();

            // --- lost-notification protocol (ranks 0 and 1) ---
            if rank.rank == 0 {
                rank.put_notify(ctx, 1, nptr, 0, nptr, 0, NOTIFY_LEN, NOTIFY_ID, 1).unwrap();
                rank.fence(ctx);
                while !resend.load(Ordering::Relaxed) && !done.load(Ordering::Relaxed) {
                    ctx.delay(Dur::micros(20.0));
                }
                if resend.load(Ordering::Relaxed) {
                    rank.put_notify(ctx, 1, nptr, 0, nptr, 0, NOTIFY_LEN, NOTIFY_ID, 1).unwrap();
                    rank.fence(ctx);
                }
            } else if rank.rank == 1 {
                match rank.notify_waitsome_with(ctx, NOTIFY_ID, 1, Wait::Until(Dur::millis(1.0))) {
                    Ok((id, value)) => {
                        assert_eq!((id, value), (NOTIFY_ID, 1));
                        done.store(true, Ordering::Relaxed);
                    }
                    Err(err) => {
                        assert!(
                            matches!(err, DiompError::Fabric(FabricError::Timeout { .. })),
                            "{err:?}"
                        );
                        timed_out.store(true, Ordering::Relaxed);
                        resend.store(true, Ordering::Relaxed);
                        let (id, value) = rank.notify_waitsome(ctx, NOTIFY_ID, 1);
                        assert_eq!((id, value), (NOTIFY_ID, 1));
                        done.store(true, Ordering::Relaxed);
                    }
                }
            }
            rank.barrier(ctx);

            // --- allreduce on the configured engine ---
            let vals: Vec<u8> = (0..len / 8)
                .flat_map(|i| (((r as u64 + 1) * (i % 11 + 1)) as f64).to_le_bytes())
                .collect();
            rank.write_local(rank.primary(), aptr, 0, &vals);
            rank.barrier(ctx);
            let world = rank.shared.world_group();
            rank.allreduce(ctx, &world, aptr, len, ReduceOp::SumF64);
            let mut out = vec![0u8; len as usize];
            rank.read_local(rank.primary(), aptr, 0, &mut out);
            sums.lock()[r] =
                out.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
            rank.barrier(ctx);
        });
    }
    let end = sim.run().unwrap().end_time;
    assert_eq!(
        timed_out.load(Ordering::Relaxed),
        faulty,
        "{tag}: the consumer times out exactly when the notification is dropped"
    );
    let expect: Vec<f64> = (0..len / 8)
        .map(|i| (1..=NRANKS as u64).map(|r| (r * (i % 11 + 1)) as f64).sum())
        .collect();
    for (r, got) in sums.lock().iter().enumerate() {
        assert_eq!(got, &expect, "{tag}: rank {r} diverged from the sequential reference");
    }
    end
}

#[test]
fn canonical_plan_completes_byte_identical_within_the_priced_bound_on_every_engine() {
    let p = PlatformSpec::platform_c();
    let auto = CollEngine::Auto(AutoConfig::for_platform(&p));
    // (engine, payload): Auto runs twice so both the LL/tree band and
    // the ring band above the crossovers are exercised under faults.
    let cases: [(CollEngine, u64, &str); 5] = [
        (CollEngine::Profile, 256 << 10, "profile"),
        (CollEngine::Ring(RingConfig::auto(&p, &diomp_xccl_op(), 1)), 256 << 10, "ring"),
        (CollEngine::Dbt(RingConfig::auto(&p, &diomp_xccl_op(), 1)), 256 << 10, "dbt"),
        (auto, 1 << 10, "auto/ll-band"),
        (auto, 1 << 20, "auto/ring-band"),
    ];
    for (engine, len, tag) in cases {
        let t_clean = run_scenario(engine, FaultPlan::new(), len, &format!("{tag} clean"));
        let t_fault = run_scenario(engine, canonical_plan(), len, &format!("{tag} faulty"));
        assert!(
            t_fault > t_clean,
            "{tag}: the canonical faults must cost virtual time ({t_fault:?} vs {t_clean:?})"
        );
        // Hard bound: the degraded NIC prices a 1000/400 = 2.5× slowdown,
        // the straggler 1.5× — the run may inflate by at most the worse
        // of the two (with a 1.5× modelling margin) plus the protocol's
        // fixed costs: the consumer's 1 ms timeout, its 20 µs resend
        // polling grain, and the retried notification's round trip.
        let inflate = 2.5 * 1.5;
        let fixed = Dur::millis(2.0);
        let bound = SimTime((t_clean.0 as f64 * inflate) as u64) + fixed;
        assert!(
            t_fault <= bound,
            "{tag}: inflation exceeds the priced degraded-bandwidth bound: \
             {t_fault:?} > {bound:?} (clean {t_clean:?})"
        );
    }
}

/// The allreduce op used to tune the pinned ring/DBT engines.
fn diomp_xccl_op() -> diomp_core::XcclOp {
    diomp_core::XcclOp::AllReduce { op: ReduceOp::SumF64 }
}

#[test]
fn canonical_plan_is_visible_in_the_health_vector() {
    // The runtime seeds gaspi_state_vec from the armed plan at build:
    // rank 0 (the degraded NIC's owner) reports Degraded{400}, everyone
    // else Healthy — and collectives price against the 400 factor.
    let sim = Sim::new();
    sim.set_fault_plan(canonical_plan());
    let shared = DiompRuntime::build(&sim, cfg(CollEngine::Profile));
    let health = shared.world.health();
    assert_eq!(health.rank_health(0), RankHealth::Degraded { factor_milli: 400 });
    for r in 1..NRANKS {
        assert_eq!(health.rank_health(r), RankHealth::Healthy, "rank {r}");
    }
    assert_eq!(health.worst_live_factor_milli(), 400);
    drop(sim);
}
