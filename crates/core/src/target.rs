//! DiOMP-integrated target regions (paper Fig. 1b).
//!
//! The baseline flow (`diomp_device::TargetDevice`) lets `libomptarget`
//! allocate device memory privately, invisible to the conduit. DiOMP
//! instead *intercepts* mapped allocations and redirects them into the
//! conduit-registered global segment: every mapped object therefore has
//! a `Seg_offset` in the extended mapping table and is remotely
//! addressable with zero extra registration — the "unified memory view
//! underpins communication structure" property of §3.2.

use diomp_device::{
    copy, HostBuf, HostId, KernelBody, KernelCost, MapKind, MapOutcome, MappingTable,
};
use diomp_sim::{Ctx, SimTime};
use parking_lot::Mutex;

use crate::error::DiompError;
use crate::gptr::GPtr;
use crate::runtime::DiompRank;

/// Per-rank DiOMP target state: one extended mapping table per owned
/// device.
pub struct DiompTarget {
    tables: Vec<Mutex<MappingTable>>,
    first_dev: usize,
}

impl DiompTarget {
    /// Target state for a rank's devices.
    pub fn new(rank: &DiompRank) -> Self {
        let devs = rank.my_devices();
        DiompTarget {
            first_dev: devs.start,
            tables: devs.map(|_| Mutex::new(MappingTable::new())).collect(),
        }
    }

    fn table(&self, flat: usize) -> &Mutex<MappingTable> {
        &self.tables[flat - self.first_dev]
    }
}

impl DiompRank {
    /// Map a host object onto every device of the job (`target enter
    /// data` under DiOMP): collective symmetric allocation in the global
    /// segment, per-rank H2D for `to`-kind maps, and a mapping-table
    /// entry whose `seg_offset` equals the symmetric offset (Fig. 1b —
    /// the H-Ptr/D-Ptr/Size/Flag row gains `Seg_offset`).
    pub fn target_enter(
        &mut self,
        ctx: &mut Ctx,
        tgt: &DiompTarget,
        host: HostId,
        buf: &HostBuf,
        kind: MapKind,
    ) -> Result<GPtr, DiompError> {
        // Presence check on the primary device decides collectively-
        // consistent behaviour: SPMD ranks map the same objects in the
        // same order.
        let primary = self.primary();
        let outcome = tgt.table(primary).lock().enter(host);
        match outcome {
            MapOutcome::Present { d_off } => {
                for flat in self.my_devices().skip(1) {
                    let _ = tgt.table(flat).lock().enter(host);
                }
                // Reconstruct the GPtr from the recorded device offset.
                let off = d_off - self.shared.seg_base[primary];
                let size = tgt.table(primary).lock().lookup(host).unwrap().size;
                Ok(GPtr { off, len: size })
            }
            MapOutcome::New => {
                let ptr = self.alloc_sym(ctx, buf.len())?;
                let mut done = SimTime::ZERO;
                for flat in self.my_devices() {
                    let d_off = self.dev_addr(flat, ptr.off);
                    {
                        let mut t = tgt.table(flat).lock();
                        if flat != primary {
                            let _ = t.enter(host);
                        }
                        t.insert(host, d_off, buf.len(), kind);
                        t.set_seg_offset(host, ptr.off);
                    }
                    if kind.copies_in() {
                        let t = copy::h2d(
                            ctx.handle(),
                            self.shared.world.devs.dev(flat),
                            buf,
                            0,
                            d_off,
                            buf.len(),
                        )?;
                        done = done.max(t);
                    }
                }
                ctx.sleep_until(done);
                Ok(ptr)
            }
        }
    }

    /// Unmap (`target exit data`): on last release, D2H for `from`-kind
    /// maps and collective free of the global allocation.
    pub fn target_exit(
        &mut self,
        ctx: &mut Ctx,
        tgt: &DiompTarget,
        host: HostId,
        buf: &HostBuf,
        kind: MapKind,
    ) -> Result<(), DiompError> {
        let primary = self.primary();
        let mut freed: Option<GPtr> = None;
        let mut done = SimTime::ZERO;
        for flat in self.my_devices() {
            if let Some(entry) = tgt.table(flat).lock().exit(host) {
                if kind.copies_out() && flat == primary {
                    let t = copy::d2h(
                        ctx.handle(),
                        self.shared.world.devs.dev(flat),
                        entry.d_off,
                        buf,
                        0,
                        entry.size,
                    )?;
                    done = done.max(t);
                }
                if flat == primary {
                    freed = Some(GPtr {
                        off: entry.seg_offset.expect("DiOMP mapping without seg_offset"),
                        len: entry.size,
                    });
                }
            }
        }
        ctx.sleep_until(done);
        if let Some(ptr) = freed {
            self.free_sym(ctx, ptr);
        }
        Ok(())
    }

    /// Launch a kernel over mapped global memory on one of this rank's
    /// devices and wait for it (`#pragma omp target`).
    pub fn target_launch(
        &mut self,
        ctx: &mut Ctx,
        flat: usize,
        cost: &KernelCost,
        body: Option<KernelBody>,
    ) {
        assert!(self.my_devices().contains(&flat));
        let dev = self.shared.world.devs.dev(flat).clone();
        let s = dev.acquire_stream(ctx);
        let end = dev.launch(ctx.handle(), s, cost, body);
        dev.release_stream(s);
        ctx.sleep_until(end);
    }

    /// Launch without waiting (`target nowait`); returns completion time.
    pub fn target_launch_nowait(
        &mut self,
        ctx: &mut Ctx,
        flat: usize,
        cost: &KernelCost,
        body: Option<KernelBody>,
    ) -> SimTime {
        assert!(self.my_devices().contains(&flat));
        let dev = self.shared.world.devs.dev(flat).clone();
        let s = dev.acquire_stream(ctx);
        let end = dev.launch(ctx.handle(), s, cost, body);
        dev.release_stream(s);
        end
    }
}
