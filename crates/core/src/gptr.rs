//! Global pointers into the PGAS space.

/// A symmetric global pointer: the same offset is valid inside every
/// device's global segment, so `(remote segment base) + off` is a
/// complete remote address (paper §3.2, Fig. 2). Obtained from
/// collective allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GPtr {
    /// Offset within the symmetric region.
    pub off: u64,
    /// Allocation length in bytes.
    pub len: u64,
}

impl GPtr {
    /// A sub-range `[delta, delta+len)` of this allocation.
    pub fn slice(self, delta: u64, len: u64) -> GPtr {
        assert!(delta + len <= self.len, "GPtr slice out of bounds");
        GPtr { off: self.off + delta, len }
    }
}

/// An asymmetric allocation as seen by one rank: the symmetric offset of
/// its 32-byte second-level wrapper, plus this rank's local data region
/// (other ranks' regions are reached by fetching *their* wrapper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AsymPtr {
    /// Symmetric offset of the wrapper slot (same on every device).
    pub wrapper_off: u64,
    /// This rank's data offset within its own segment(s).
    pub my_data_off: u64,
    /// This rank's local allocation length.
    pub my_len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_narrows_the_range() {
        let p = GPtr { off: 1024, len: 256 };
        let s = p.slice(64, 32);
        assert_eq!(s, GPtr { off: 1088, len: 32 });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_cannot_exceed_allocation() {
        let p = GPtr { off: 0, len: 16 };
        let _ = p.slice(8, 16);
    }
}
