//! Elastic rank-failure recovery: checkpoint epochs, rollback, and
//! survivor agreement (DESIGN.md D17).
//!
//! GASPI's fault story is cooperative: bounded waits surface
//! `GASPI_TIMEOUT`, `gaspi_state_vec` names the corrupt ranks, and the
//! application rebuilds the process set. This module supplies the
//! application half of that loop for collective workloads:
//!
//! * **Checkpoint epochs** — application buffers are snapshotted at
//!   collective boundaries every [`RecoveryConfig::checkpoint_every`]
//!   iterations ([`Checkpoint::take`]). Collective boundaries are the
//!   one place a snapshot is guaranteed consistent: the rendezvous gate
//!   applies data semantics only when *every* member arrived, so an
//!   aborted collective has touched no byte and the last checkpoint is
//!   exact.
//! * **Rollback** — on a detected death, survivors restore their buffers
//!   from the checkpoint ([`Checkpoint::restore`]) and re-run the
//!   iterations since, now over the shrunk communicator.
//! * **Survivor agreement** — all live ranks must converge on the *same*
//!   shrunk world. Rather than a consensus round, agreement is a pure
//!   function of the installed fault plan:
//!   [`diomp_fabric::FabricWorld::converged_health`] marks every planned
//!   kill dead (even those whose time has not yet come), so two failures
//!   straddling a detection window cannot split the survivor set, and
//!   chaos runs replay bit-identically. [`survivors`] extracts the
//!   agreed rank list.
//!
//! Checkpoints charge modelled time — a device-local copy at HBM rate —
//! so the ≤1.05× "no-harm" bound the bench gate enforces is a property
//! of the model, not an accident of free snapshots. With no
//! [`RecoveryConfig`] armed nothing here runs and traces are
//! bit-identical to a recovery-free build.

use std::sync::Arc;

use diomp_device::DataMode;
use diomp_fabric::{FabricWorld, HealthVec, RankHealth};
use diomp_sim::{Ctx, Dur};

/// Arms elastic recovery for a collective workload. `None`-armed runs
/// (the default everywhere) execute the historical blocking path,
/// bit-identical to builds that predate recovery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// Snapshot application buffers every this many collective
    /// iterations (1 = every collective boundary). Longer epochs cost
    /// less checkpoint time but re-run more work after a death.
    pub checkpoint_every: u32,
    /// Per-park wait budget at the collective rendezvous gate. A gate
    /// that does not fill within this virtual-time budget triggers the
    /// `gaspi_state_vec` probe; a confirmed member death aborts the
    /// collective, anything else re-parks (stragglers are not corpses).
    pub collective_timeout: Dur,
    /// Base virtual-time backoff charged before re-running after a
    /// shrink, doubling per retry of the same job (exponential backoff —
    /// the modelled cost of the reconnection storm a real rebuild rides
    /// out).
    pub retry_backoff: Dur,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 1,
            collective_timeout: Dur::millis(1.0),
            retry_backoff: Dur::micros(50.0),
        }
    }
}

impl RecoveryConfig {
    /// The backoff to charge before retry number `attempt` (0-based):
    /// `retry_backoff · 2^attempt`.
    pub fn backoff_for(&self, attempt: u32) -> Dur {
        Dur::nanos(self.retry_backoff.as_nanos().saturating_mul(1u64 << attempt.min(62)))
    }
}

/// The agreed survivor ranks of a health vector: everyone not marked
/// [`RankHealth::Dead`]. Feed it the survivor-agreement fixpoint
/// ([`diomp_fabric::FabricWorld::converged_health`]) and every live rank
/// computes the same list at any time.
pub fn survivors(health: &HealthVec) -> Vec<usize> {
    (0..health.nranks()).filter(|&r| health.rank_health(r) != RankHealth::Dead).collect()
}

/// A consistent snapshot of one rank's application buffers, taken at a
/// collective boundary.
pub struct Checkpoint {
    /// The iteration the snapshot represents: re-running starts here.
    pub iter: u64,
    /// Snapshotted bytes per buffer (Functional mode; CostOnly runs
    /// carry lengths only — the time model is identical either way).
    data: Vec<(usize, u64, Vec<u8>)>,
}

/// One device-resident application buffer: `(flat device, offset, len)`.
pub type BufSpec = (usize, u64, u64);

impl Checkpoint {
    /// Snapshot `bufs` as the state of iteration `iter`, charging the
    /// modelled copy time (one read + one write of every byte at the
    /// device's HBM rate — a device-local shadow copy, the cheapest
    /// consistent checkpoint).
    pub fn take(
        ctx: &mut Ctx,
        world: &Arc<FabricWorld>,
        bufs: &[BufSpec],
        iter: u64,
    ) -> Checkpoint {
        let mut data = Vec::with_capacity(bufs.len());
        let mut bytes = 0u64;
        for &(flat, off, len) in bufs {
            let dev = world.devs.dev(flat);
            bytes += len;
            let stored = if dev.mem.mode() == DataMode::Functional {
                let mut out = vec![0u8; len as usize];
                dev.mem.read(off, &mut out).expect("checkpoint read out of bounds");
                out
            } else {
                Vec::new()
            };
            data.push((flat, off, stored));
        }
        ctx.delay(copy_time(world, bytes));
        Checkpoint { iter, data }
    }

    /// Restore the snapshotted bytes (rollback), charging the same
    /// modelled copy time as the snapshot took.
    pub fn restore(&self, ctx: &mut Ctx, world: &Arc<FabricWorld>) {
        let mut bytes = 0u64;
        for (flat, off, stored) in &self.data {
            let dev = world.devs.dev(*flat);
            bytes += stored.len() as u64;
            if dev.mem.mode() == DataMode::Functional {
                dev.mem.write(*off, stored).expect("rollback write out of bounds");
            }
        }
        ctx.delay(copy_time(world, bytes));
    }
}

/// Device-local copy time for `bytes`: read + write at HBM bandwidth.
fn copy_time(world: &Arc<FabricWorld>, bytes: u64) -> Dur {
    let gbps = world.platform.gpu.hbm_gbps.max(1.0);
    Dur::micros(2.0 * bytes as f64 / (gbps * 1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        let rc = RecoveryConfig { retry_backoff: Dur::micros(10.0), ..Default::default() };
        assert_eq!(rc.backoff_for(0), Dur::micros(10.0));
        assert_eq!(rc.backoff_for(1), Dur::micros(20.0));
        assert_eq!(rc.backoff_for(3), Dur::micros(80.0));
    }

    #[test]
    fn survivors_drop_only_the_dead() {
        let mut v = HealthVec::healthy(5);
        v.observe(1, 0);
        v.observe(3, 400); // degraded but alive
        assert_eq!(survivors(&v), vec![0, 2, 3, 4]);
    }
}
