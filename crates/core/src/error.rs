//! Runtime errors.

use diomp_device::MemError;

/// Errors surfaced by the DiOMP runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiompError {
    /// The collective symmetric allocation could not be satisfied.
    OutOfGlobalMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// The per-device asymmetric region is exhausted.
    OutOfAsymMemory {
        /// Bytes requested.
        requested: u64,
        /// Device that failed.
        dev: usize,
    },
    /// An underlying device-memory error.
    Mem(MemError),
}

impl From<MemError> for DiompError {
    fn from(e: MemError) -> Self {
        DiompError::Mem(e)
    }
}

impl std::fmt::Display for DiompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiompError::OutOfGlobalMemory { requested } => {
                write!(f, "global symmetric heap exhausted ({requested} B requested)")
            }
            DiompError::OutOfAsymMemory { requested, dev } => {
                write!(f, "asymmetric region exhausted on device {dev} ({requested} B requested)")
            }
            DiompError::Mem(e) => write!(f, "device memory error: {e}"),
        }
    }
}
impl std::error::Error for DiompError {}
