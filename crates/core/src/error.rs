//! Runtime errors.

use diomp_device::MemError;
use diomp_fabric::FabricError;

/// Errors surfaced by the DiOMP runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiompError {
    /// The collective symmetric allocation could not be satisfied.
    OutOfGlobalMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// The per-device asymmetric region is exhausted.
    OutOfAsymMemory {
        /// Bytes requested.
        requested: u64,
        /// Device that failed.
        dev: usize,
    },
    /// An underlying device-memory error.
    Mem(MemError),
    /// A conduit-level error (timeout, errored queue, missing conduit)
    /// that survived the runtime's own recovery — e.g. a queue that kept
    /// failing past the configured retry budget.
    Fabric(FabricError),
}

impl From<MemError> for DiompError {
    fn from(e: MemError) -> Self {
        DiompError::Mem(e)
    }
}

impl From<FabricError> for DiompError {
    fn from(e: FabricError) -> Self {
        // Collapse the nested memory case so matching on `Mem` works
        // regardless of which layer detected it.
        match e {
            FabricError::Mem(m) => DiompError::Mem(m),
            other => DiompError::Fabric(other),
        }
    }
}

impl std::fmt::Display for DiompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiompError::OutOfGlobalMemory { requested } => {
                write!(f, "global symmetric heap exhausted ({requested} B requested)")
            }
            DiompError::OutOfAsymMemory { requested, dev } => {
                write!(f, "asymmetric region exhausted on device {dev} ({requested} B requested)")
            }
            DiompError::Mem(e) => write!(f, "device memory error: {e}"),
            DiompError::Fabric(e) => write!(f, "fabric error: {e}"),
        }
    }
}
impl std::error::Error for DiompError {}
