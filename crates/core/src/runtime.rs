//! The DiOMP-Offloading runtime: boot, shared state, per-rank handle.
//!
//! `DiompRuntime::run` assembles the whole stack bottom-up (paper Fig.
//! 1b): simulated cluster → devices → conduit world → per-device global
//! segments → shared symmetric/asymmetric heap → rank tasks. Each rank
//! receives a [`DiompRank`] handle carrying the `ompx_*` API
//! (allocation in `runtime.rs`, RMA in `rma.rs`, synchronisation in
//! `sync.rs`, collectives in `ompccl.rs`, target regions in `target.rs`).

use std::sync::Arc;

use diomp_device::DeviceTable;
use diomp_fabric::{ExchangeDomain, FabricWorld, SegmentId, SegmentMem};
use diomp_sim::{Ctx, Dur, EventId, Sim, SimError, SimReport, Topology};
use parking_lot::Mutex;

use crate::config::{Binding, DiompConfig};
use crate::error::DiompError;
use crate::galloc::{AsymRegion, AsymRegistry, PtrCache, SymHeap, WRAPPER_BYTES};
use crate::gptr::{AsymPtr, GPtr};
use crate::group::{DiompGroup, GroupRegistry};

/// Job-wide shared runtime state.
pub struct DiompShared {
    /// Configuration the job was booted with.
    pub cfg: DiompConfig,
    /// The conduit world underneath.
    pub world: Arc<FabricWorld>,
    /// Per-device attached segment ids (index = flat device).
    pub seg: Vec<SegmentId>,
    /// Per-device segment base offsets in device address space.
    pub seg_base: Vec<u64>,
    /// The shared symmetric heap (one layout for every device).
    pub sym: SymHeap,
    /// The asymmetric region manager.
    pub asym: AsymRegion,
    /// Ground truth for asymmetric allocations (cache validity).
    pub asym_reg: AsymRegistry,
    /// World-collective allocation gate.
    pub(crate) alloc_exch: ExchangeDomain<u64>,
    /// Group registry (split/merge).
    pub groups: GroupRegistry,
    /// Per-rank pending RMA completions, drained by `ompx_fence`.
    pub(crate) pending: Vec<Mutex<Vec<EventId>>>,
}

impl DiompShared {
    /// The world group (all ranks).
    pub fn world_group(&self) -> DiompGroup {
        self.groups.get_or_create((0..self.world.nranks).collect())
    }
}

/// Per-rank runtime handle — the `ompx_*` API surface. Owned by the
/// rank's task.
pub struct DiompRank {
    /// Shared job state.
    pub shared: Arc<DiompShared>,
    /// This rank.
    pub rank: usize,
    /// Remote second-level-pointer cache (paper §3.2).
    pub cache: PtrCache,
    /// GASPI recovery loops taken so far: one count per purge-and-repost
    /// of a GPI-2 operation that hit an errored queue. Stays 0 on a
    /// healthy fabric.
    pub rma_retries: u64,
}

/// The DiOMP runtime entry point.
pub struct DiompRuntime;

impl DiompRuntime {
    /// Build the shared state inside an existing simulation (harnesses
    /// that need extra tasks or custom control use this; most callers use
    /// [`DiompRuntime::run`]).
    pub fn build(sim: &Sim, cfg: DiompConfig) -> Arc<DiompShared> {
        let h = sim.handle();
        let topo = Arc::new(Topology::build(&h, cfg.cluster.clone()));
        let devs = DeviceTable::build(&h, topo.clone(), cfg.mode, cfg.mem_capacity);
        let nranks = cfg.nranks();
        let world = FabricWorld::new(topo, devs, nranks);
        // Attach the simulator: the health vector (gaspi_state_vec) then
        // derives *live* from whichever fault plan is installed when it
        // is read — degradation-aware layers (rail blacklisting, regime
        // re-pricing) see faults armed after build too, not a build-time
        // snapshot — and any rank-kill events are expanded into kernel
        // dead windows over the doomed ranks' exclusive links.
        world.attach_sim(&h);
        if let Some(plan) = h.fault_plan() {
            world.refresh_health_from_plan(&plan);
        }

        // Attach one conduit segment per device and enable GPUDirect peer
        // access among same-node devices (topology detection, paper §3.2).
        let mut seg = Vec::with_capacity(world.devs.len());
        let mut seg_base = Vec::with_capacity(world.devs.len());
        for r in 0..nranks {
            for d in world.devices_of(r) {
                let id = world
                    .attach_device_segment(r, d, cfg.heap_bytes)
                    .expect("device too small for the configured global heap");
                let base = match &world.segment(id).mem {
                    SegmentMem::Device { base, .. } => *base,
                    SegmentMem::Host { .. } => unreachable!(),
                };
                seg.push(id);
                seg_base.push(base);
            }
        }
        if cfg.use_p2p {
            for a in world.devs.iter() {
                for b in world.devs.iter() {
                    if a.flat != b.flat && a.loc.node == b.loc.node {
                        a.enable_peer(b.flat);
                    }
                }
            }
        }

        let asym_len = (cfg.heap_bytes as f64 * cfg.asym_frac) as u64;
        let sym_len = cfg.heap_bytes - asym_len;
        let hop = Dur::micros(world.platform.net.latency_us);
        Arc::new(DiompShared {
            world: world.clone(),
            seg,
            seg_base,
            sym: SymHeap::new(cfg.allocator, sym_len),
            asym: AsymRegion::new(sym_len, asym_len, world.devs.len()),
            asym_reg: AsymRegistry::new(),
            alloc_exch: ExchangeDomain::new(nranks, hop),
            groups: GroupRegistry::new(hop),
            pending: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            cfg,
        })
    }

    /// Boot a job and run `f` on every rank (SPMD). Returns the
    /// simulation report.
    pub fn run<F>(cfg: DiompConfig, f: F) -> Result<SimReport, SimError>
    where
        F: Fn(&mut Ctx, &mut DiompRank) + Send + Sync + 'static,
    {
        let mut sim = Sim::new();
        let shared = Self::build(&sim, cfg);
        let f = Arc::new(f);
        for r in 0..shared.world.nranks {
            let shared = shared.clone();
            let f = f.clone();
            sim.spawn(format!("diomp-rank{r}"), move |ctx| {
                let mut rank =
                    DiompRank { shared, rank: r, cache: PtrCache::new(), rma_retries: 0 };
                f(ctx, &mut rank);
            });
        }
        sim.run()
    }
}

impl DiompRank {
    /// Flat indices of the devices bound to this rank.
    pub fn my_devices(&self) -> std::ops::Range<usize> {
        self.shared.world.devices_of(self.rank)
    }

    /// This rank's primary device.
    pub fn primary(&self) -> usize {
        self.my_devices().start
    }

    /// Number of ranks in the job.
    pub fn nranks(&self) -> usize {
        self.shared.world.nranks
    }

    /// Binding mode of the job.
    pub fn binding(&self) -> Binding {
        self.shared.cfg.binding
    }

    /// Device-space address of a symmetric offset on a device.
    pub fn dev_addr(&self, flat: usize, sym_off: u64) -> u64 {
        self.shared.seg_base[flat] + sym_off
    }

    /// Collective symmetric allocation (`omp_alloc` into the global
    /// space / intercepted `libomptarget` allocation, paper §3.1–3.2).
    /// Every rank must call with the same `len`; all receive the same
    /// offset, valid on every device.
    pub fn alloc_sym(&mut self, ctx: &mut Ctx, len: u64) -> Result<GPtr, DiompError> {
        let s = &self.shared;
        // Round 1: agree on the size (and detect asymmetric misuse).
        let lens = s.alloc_exch.exchange(ctx, self.rank, len);
        assert!(
            lens.iter().all(|&l| l == len),
            "alloc_sym sizes differ across ranks (use alloc_asym): {lens:?}"
        );
        // Round 2: rank 0 performs the allocation, everyone learns it.
        let off = if self.rank == 0 {
            s.sym.alloc(len).map(|o| o + 1).unwrap_or(0) // 0 = failure sentinel
        } else {
            0
        };
        let offs = s.alloc_exch.exchange(ctx, self.rank, off);
        match offs[0] {
            0 => Err(DiompError::OutOfGlobalMemory { requested: len }),
            o => Ok(GPtr { off: o - 1, len }),
        }
    }

    /// Collective symmetric free.
    pub fn free_sym(&mut self, ctx: &mut Ctx, ptr: GPtr) {
        let s = &self.shared;
        // Synchronise so nobody frees memory another rank still targets.
        let _ = s.alloc_exch.exchange(ctx, self.rank, ptr.off);
        if self.rank == 0 {
            s.sym.free(ptr.off);
        }
    }

    /// Collective *asymmetric* allocation (paper §3.2, Fig. 2): each rank
    /// may pass a different `len`. Allocates the 32-byte second-level
    /// wrapper symmetrically, the data locally, writes the wrapper on
    /// this rank's devices, and registers the mapping.
    pub fn alloc_asym(&mut self, ctx: &mut Ctx, len: u64) -> Result<AsymPtr, DiompError> {
        let wrapper = self.alloc_sym(ctx, WRAPPER_BYTES)?;
        let s = self.shared.clone();
        let mut data_off = None;
        for d in self.my_devices() {
            let off = s
                .asym
                .alloc(d, len)
                .ok_or(DiompError::OutOfAsymMemory { requested: len, dev: d })?;
            // All devices of one rank get identical asym layouts by
            // construction (same allocation sequence).
            if let Some(prev) = data_off {
                assert_eq!(prev, off, "per-rank devices diverged in asym layout");
            }
            data_off = Some(off);
            s.asym_reg.insert(d, wrapper.off, off);
            // Materialise the wrapper in device memory: 8-byte LE data
            // offset + 8-byte LE length (16 reserved) — this is what a
            // remote two-stage access really fetches.
            let mut bytes = [0u8; WRAPPER_BYTES as usize];
            bytes[..8].copy_from_slice(&off.to_le_bytes());
            bytes[8..16].copy_from_slice(&len.to_le_bytes());
            s.world.devs.dev(d).mem.write(self.dev_addr(d, wrapper.off), &bytes)?;
        }
        // Everyone must have written their wrappers before any remote
        // access can occur.
        self.barrier(ctx);
        Ok(AsymPtr { wrapper_off: wrapper.off, my_data_off: data_off.unwrap(), my_len: len })
    }

    /// Collective asymmetric free: deregisters (invalidating every remote
    /// pointer cache), releases the local data and the wrapper slot.
    pub fn free_asym(&mut self, ctx: &mut Ctx, ptr: AsymPtr) {
        let s = self.shared.clone();
        for d in self.my_devices() {
            let off = s.asym_reg.remove(d, ptr.wrapper_off).expect("free of unknown asym ptr");
            s.asym.free(d, off);
        }
        self.barrier(ctx);
        self.free_sym(ctx, GPtr { off: ptr.wrapper_off, len: WRAPPER_BYTES });
    }

    /// Write host bytes into a symmetric allocation on one of this rank's
    /// devices (test/app initialisation helper; not a communication op).
    pub fn write_local(&self, flat: usize, ptr: GPtr, delta: u64, bytes: &[u8]) {
        assert!(self.my_devices().contains(&flat));
        assert!(delta + bytes.len() as u64 <= ptr.len, "write_local out of bounds");
        self.shared
            .world
            .devs
            .dev(flat)
            .mem
            .write(self.dev_addr(flat, ptr.off + delta), bytes)
            .expect("segment write");
    }

    /// Read bytes from a symmetric allocation on one of this rank's
    /// devices.
    pub fn read_local(&self, flat: usize, ptr: GPtr, delta: u64, out: &mut [u8]) {
        assert!(self.my_devices().contains(&flat));
        assert!(delta + out.len() as u64 <= ptr.len, "read_local out of bounds");
        self.shared
            .world
            .devs
            .dev(flat)
            .mem
            .read(self.dev_addr(flat, ptr.off + delta), out)
            .expect("segment read");
    }
}
