//! One-sided RMA with topology-aware hierarchical path selection
//! (paper §3.2).
//!
//! `ompx_put` / `ompx_get` resolve the transfer path at runtime:
//!
//! * same device → local copy engine,
//! * same node + GPUDirect P2P enabled → direct NVLink/xGMI peer copy,
//! * same node, different process, no P2P → IPC staging through host
//!   shared memory,
//! * different nodes → the conduit (GASNet-EX Put/Get or GPI-2
//!   write/read, per configuration).
//!
//! Every operation is *fence-tracked*: its remote-completion event is
//! appended to the rank's pending list and drained by `ompx_fence`
//! (Listing 1 of the paper: a loop of `ompx_put` calls followed by one
//! `ompx_fence`). Device-side copies are additionally threaded through
//! the source device's bounded stream pool, coupling communication with
//! stream lifecycle exactly as §3.2 describes.

use std::sync::Arc;

use diomp_device::copy;
use diomp_fabric::{gasnet, gpi, FabricError, FabricWorld, Loc};
use diomp_sim::{Ctx, Dur, Placement, SimTime};

use crate::config::Conduit;
use crate::error::DiompError;
use crate::gptr::{AsymPtr, GPtr};
use crate::runtime::DiompRank;

impl DiompRank {
    /// Record a completion for the fence to drain.
    fn track(&self, ev: diomp_sim::EventId) {
        self.shared.pending[self.rank].lock().push(ev);
    }

    /// Post one GPI-2 operation with the GASPI recovery loop: a post
    /// that hits an errored queue (a transient injected fault, or real
    /// queue failure) is retried after `gaspi_queue_purge` plus an
    /// exponentially-doubling virtual-time backoff, up to the configured
    /// budget. Safe to repeat because a failed post fails *before* any
    /// bytes are scheduled — nothing partial is ever re-sent. Retries
    /// taken are counted on [`DiompRank::rma_retries`].
    pub(crate) fn gpi_retry(
        &mut self,
        ctx: &mut Ctx,
        world: &Arc<FabricWorld>,
        queue: gpi::QueueId,
        mut post: impl FnMut(&mut Ctx) -> Result<(), FabricError>,
    ) -> Result<(), DiompError> {
        let budget = self.shared.cfg.max_rma_retries;
        let mut backoff = Dur::micros(self.shared.cfg.retry_backoff_us);
        let mut attempt = 0;
        loop {
            match post(ctx) {
                Ok(()) => return Ok(()),
                Err(FabricError::QueueError { .. }) if attempt < budget => {
                    attempt += 1;
                    self.rma_retries += 1;
                    gpi::queue_purge(ctx.handle(), world, self.rank, queue);
                    ctx.delay(backoff);
                    backoff += backoff;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Thread a device-side transfer through the source device's stream
    /// pool (lazy/reused/bounded, paper §3.2) and produce its tracked
    /// completion event.
    fn track_device_copy(&self, ctx: &mut Ctx, src_flat: usize, done: SimTime) {
        let dev = self.shared.world.devs.dev(src_flat).clone();
        let s = dev.acquire_stream(ctx);
        {
            let mut pool = dev.pool.lock();
            pool.advance_tail(s, done);
        }
        let ev = dev.pool.lock().record_event(ctx.handle(), s);
        dev.release_stream(s);
        self.track(ev);
    }

    /// Core one-sided put between device segments:
    /// `dst_dev[dst_off] ← src_dev[src_off]`, `len` bytes, where offsets
    /// are *segment* offsets. Non-blocking; completion is observed by
    /// `ompx_fence`.
    pub fn put_dev(
        &mut self,
        ctx: &mut Ctx,
        src_flat: usize,
        src_off: u64,
        dst_flat: usize,
        dst_off: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        assert!(self.my_devices().contains(&src_flat), "put source must be a local device");
        let s = self.shared.clone();
        let w = &s.world;
        let src_loc = w.devs.dev(src_flat).loc;
        let dst_loc = w.devs.dev(dst_flat).loc;
        let h = ctx.handle().clone();
        match w.topo.placement(src_loc, dst_loc) {
            Placement::SameDevice => {
                let done = copy::d2d_local(
                    &h,
                    w.devs.dev(src_flat),
                    s.seg_base[src_flat] + src_off,
                    s.seg_base[dst_flat] + dst_off,
                    len,
                )?;
                self.track_device_copy(ctx, src_flat, done);
            }
            Placement::SameNode => {
                let same_rank = self.my_devices().contains(&dst_flat);
                let p2p = s.cfg.use_p2p && w.devs.dev(src_flat).peer_enabled(dst_flat);
                if same_rank || p2p {
                    let done = copy::d2d_peer(
                        &h,
                        w.devs.dev(src_flat),
                        s.seg_base[src_flat] + src_off,
                        w.devs.dev(dst_flat),
                        s.seg_base[dst_flat] + dst_off,
                        len,
                    )?;
                    self.track_device_copy(ctx, src_flat, done);
                } else {
                    // IPC staging: pay the one-time handle-open cost.
                    let setup = w
                        .devs
                        .dev(src_flat)
                        .open_ipc(dst_flat, Dur::micros(w.platform.intra.ipc_setup_us));
                    if setup > Dur::ZERO {
                        ctx.delay(setup);
                    }
                    let done = copy::d2d_ipc(
                        &h,
                        w.devs.dev(src_flat),
                        s.seg_base[src_flat] + src_off,
                        w.devs.dev(dst_flat),
                        s.seg_base[dst_flat] + dst_off,
                        len,
                        w.topo.shm(src_loc.node),
                    )?;
                    self.track_device_copy(ctx, src_flat, done);
                }
            }
            Placement::InterNode => {
                let dst_rank = w.rank_of_dev(dst_flat);
                let pipe = s.cfg.pipeline;
                match s.cfg.conduit {
                    Conduit::GasnetEx => {
                        if pipe.pipelines(len) {
                            self.put_gasnet_pipelined(
                                ctx, src_flat, src_off, dst_flat, dst_off, len,
                            )?;
                        } else {
                            let hdl = gasnet::put_nb(
                                ctx,
                                w,
                                self.rank,
                                Loc::dev(src_flat, s.seg_base[src_flat] + src_off),
                                s.seg[dst_flat],
                                dst_off,
                                len,
                            )?;
                            // Fence drains both: local completion (source
                            // buffer reuse) and the remote ack.
                            self.track(hdl.local);
                            self.track(hdl.remote);
                        }
                        let _ = dst_rank;
                    }
                    Conduit::Gpi2 => {
                        // Chunk completions round-robin across the
                        // configured queue set; a monolithic write posts
                        // to queue 0. `ompx_fence` drains every queue.
                        // Each post runs under the GASPI recovery loop.
                        let rank = self.rank;
                        for (i, (coff, clen)) in pipe.chunks(len).enumerate() {
                            let q = gpi::QueueId((i % pipe.n_queues.max(1) as usize) as u8);
                            let world = s.world.clone();
                            let src = Loc::dev(src_flat, s.seg_base[src_flat] + src_off + coff);
                            let seg = s.seg[dst_flat];
                            self.gpi_retry(ctx, &s.world, q, move |ctx| {
                                gpi::write(
                                    ctx,
                                    &world,
                                    rank,
                                    q,
                                    src.clone(),
                                    seg,
                                    dst_off + coff,
                                    clen,
                                )
                            })?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Core one-sided get: `src_dev_local[dst_off] ← remote[src_off]`.
    /// Non-blocking; completion via `ompx_fence`.
    pub fn get_dev(
        &mut self,
        ctx: &mut Ctx,
        local_flat: usize,
        local_off: u64,
        remote_flat: usize,
        remote_off: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        assert!(self.my_devices().contains(&local_flat), "get destination must be local");
        let s = self.shared.clone();
        let w = &s.world;
        let lloc = w.devs.dev(local_flat).loc;
        let rloc = w.devs.dev(remote_flat).loc;
        let h = ctx.handle().clone();
        match w.topo.placement(lloc, rloc) {
            Placement::SameDevice | Placement::SameNode => {
                // Intra-node gets run as reversed peer/local copies: the
                // initiator's GPU engines pull over NVLink/xGMI.
                let done = if lloc == rloc {
                    copy::d2d_local(
                        &h,
                        w.devs.dev(local_flat),
                        s.seg_base[remote_flat] + remote_off,
                        s.seg_base[local_flat] + local_off,
                        len,
                    )?
                } else {
                    copy::d2d_peer(
                        &h,
                        w.devs.dev(remote_flat),
                        s.seg_base[remote_flat] + remote_off,
                        w.devs.dev(local_flat),
                        s.seg_base[local_flat] + local_off,
                        len,
                    )?
                };
                self.track_device_copy(ctx, local_flat, done);
            }
            Placement::InterNode => {
                let pipe = s.cfg.pipeline;
                match s.cfg.conduit {
                    Conduit::GasnetEx => {
                        if pipe.pipelines(len)
                            && gasnet::put_capped(w, true, pipe.chunk_bytes.min(len))
                        {
                            // Host-capped platform (the documented Fig. 4a
                            // device-DMA driver issue): route the large get
                            // through the host-staged pipeline too, so the
                            // deposit side never rides the fragile direct
                            // device path.
                            self.get_gasnet_staged(
                                ctx,
                                local_flat,
                                local_off,
                                remote_flat,
                                remote_off,
                                len,
                            )?;
                        } else {
                            // Chunked gets issue one non-blocking injection
                            // per chunk; the requests pipeline on the wire
                            // and the fence drains all completions at once.
                            for (coff, clen) in pipe.chunks(len) {
                                let ev = gasnet::get_nb(
                                    ctx,
                                    w,
                                    self.rank,
                                    Loc::dev(local_flat, s.seg_base[local_flat] + local_off + coff),
                                    s.seg[remote_flat],
                                    remote_off + coff,
                                    clen,
                                )?;
                                self.track(ev);
                            }
                        }
                    }
                    Conduit::Gpi2 => {
                        let rank = self.rank;
                        for (i, (coff, clen)) in pipe.chunks(len).enumerate() {
                            let q = gpi::QueueId((i % pipe.n_queues.max(1) as usize) as u8);
                            let world = s.world.clone();
                            let dst =
                                Loc::dev(local_flat, s.seg_base[local_flat] + local_off + coff);
                            let seg = s.seg[remote_flat];
                            self.gpi_retry(ctx, &s.world, q, move |ctx| {
                                gpi::read(
                                    ctx,
                                    &world,
                                    rank,
                                    q,
                                    dst.clone(),
                                    seg,
                                    remote_off + coff,
                                    clen,
                                )
                            })?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Chunked inter-node put over GASNet-EX (paper §3.2: overlapping
    /// device-side copies with conduit transfers).
    ///
    /// Two regimes:
    ///
    /// * **Direct** — each chunk is its own `gex_RMA_PutNB` straight from
    ///   device memory (GPUDirect). The NIC pipelines the injections;
    ///   per-chunk initiator overhead hides under the wire time.
    /// * **Host-staged** — when the direct device-source path is
    ///   bandwidth-capped (the documented Platform A Fig. 4a anomaly,
    ///   [`gasnet::put_capped`]), chunks bounce D2H into a bounded ring of
    ///   host staging buffers and inject from host memory, which the cap
    ///   does not affect. Chunk `k+1`'s D2H copy overlaps chunk `k`'s
    ///   in-flight network transfer; the D2H copies are threaded through
    ///   the source device's bounded stream pool, and `max_inflight`
    ///   staging slots bound the look-ahead (a slot is reused only after
    ///   its previous put reports local completion, `GEX_EVENT_LC`).
    fn put_gasnet_pipelined(
        &mut self,
        ctx: &mut Ctx,
        src_flat: usize,
        src_off: u64,
        dst_flat: usize,
        dst_off: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        let s = self.shared.clone();
        let w = &s.world;
        let pipe = s.cfg.pipeline;
        let src_base = s.seg_base[src_flat] + src_off;
        let staged = gasnet::put_capped(w, true, pipe.chunk_bytes.min(len));
        if !staged {
            for (coff, clen) in pipe.chunks(len) {
                let hdl = gasnet::put_nb(
                    ctx,
                    w,
                    self.rank,
                    Loc::dev(src_flat, src_base + coff),
                    s.seg[dst_flat],
                    dst_off + coff,
                    clen,
                )?;
                self.track(hdl.local);
                self.track(hdl.remote);
            }
            return Ok(());
        }

        let dev = w.devs.dev(src_flat).clone();
        let functional = w.devs.mode == diomp_device::DataMode::Functional;
        let nslots = pipe.max_inflight.max(1);
        let bufs: Vec<diomp_device::HostBuf> = (0..nslots)
            .map(|_| {
                if functional {
                    diomp_device::HostBuf::zeroed(pipe.chunk_bytes)
                } else {
                    diomp_device::HostBuf::phantom(pipe.chunk_bytes)
                }
            })
            .collect();
        let mut slot_local: Vec<Option<diomp_sim::EventId>> = vec![None; nslots];
        for (k, (coff, clen)) in pipe.chunks(len).enumerate() {
            let slot = k % nslots;
            // Staging-slot ring bound: reuse only after the previous put
            // from this buffer is locally complete.
            if let Some(local) = slot_local[slot].take() {
                ctx.wait_free(local);
            }
            // Stage the chunk D2H through the bounded stream pool.
            let stream = dev.acquire_stream(ctx);
            let done = copy::d2h(ctx.handle(), &dev, src_base + coff, &bufs[slot], 0, clen)?;
            dev.pool.lock().advance_tail(stream, done);
            dev.release_stream(stream);
            // Inject once the chunk is host-resident; the NIC transfer of
            // this chunk overlaps the next chunk's D2H copy.
            ctx.sleep_until(done);
            let hdl = gasnet::put_nb(
                ctx,
                w,
                self.rank,
                Loc::host(bufs[slot].clone(), 0),
                s.seg[dst_flat],
                dst_off + coff,
                clen,
            )?;
            slot_local[slot] = Some(hdl.local);
            self.track(hdl.remote);
        }
        for local in slot_local.into_iter().flatten() {
            self.track(local);
        }
        Ok(())
    }

    /// Chunked inter-node get staged through host bounce buffers — the
    /// get-side counterpart of [`Self::put_gasnet_pipelined`]'s staged
    /// regime, used on host-capped platforms (where the documented
    /// Fig. 4a driver issue makes the direct device DMA path the fragile
    /// one) under a pipelining config such as the autotuner's.
    ///
    /// Non-blocking like every other get path: each chunk lands in one
    /// of `max_inflight` host bounce buffers via `gex_RMA_GetNB`, and
    /// its H2D upload is *scheduled at the chunk's modelled arrival
    /// instant* ([`gasnet::get_nb_timed`] guarantees the upload's
    /// snapshot runs after the deposit), so uploads overlap later
    /// chunks' wire time without ever synchronising the issuing task —
    /// it returns immediately and `ompx_fence` drains both the chunk
    /// arrivals and the upload completions. The uploads charge the
    /// destination device's host link (PCIe) directly and bypass the
    /// bounded stream pool (a scheduled completion action cannot park on
    /// stream acquisition); stream-pool coupling remains a put-side
    /// property.
    ///
    /// Slot reuse is race-free without any waiting: arrivals on one NIC
    /// are FIFO, so chunk `k`'s upload snapshot (at its arrival) always
    /// precedes chunk `k + max_inflight`'s deposit into the same buffer
    /// (at a strictly later arrival).
    fn get_gasnet_staged(
        &mut self,
        ctx: &mut Ctx,
        local_flat: usize,
        local_off: u64,
        remote_flat: usize,
        remote_off: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        let s = self.shared.clone();
        let w = &s.world;
        let pipe = s.cfg.pipeline;
        let dev = w.devs.dev(local_flat).clone();
        let functional = w.devs.mode == diomp_device::DataMode::Functional;
        let dst_base = s.seg_base[local_flat] + local_off;
        // Pre-check the device destination range once, so the scheduled
        // upload actions can rely on bounds like every other deposit.
        if dst_base + len > dev.mem.capacity() {
            return Err(diomp_device::MemError::OutOfBounds {
                offset: dst_base,
                len,
                capacity: dev.mem.capacity(),
            }
            .into());
        }
        let nslots = pipe.max_inflight.max(1);
        let bufs: Vec<diomp_device::HostBuf> = (0..nslots)
            .map(|_| {
                if functional {
                    diomp_device::HostBuf::zeroed(pipe.chunk_bytes)
                } else {
                    diomp_device::HostBuf::phantom(pipe.chunk_bytes)
                }
            })
            .collect();
        for (k, (coff, clen)) in pipe.chunks(len).enumerate() {
            let slot = k % nslots;
            let (arrival_ev, arrive) = gasnet::get_nb_timed(
                ctx,
                w,
                self.rank,
                Loc::host(bufs[slot].clone(), 0),
                s.seg[remote_flat],
                remote_off + coff,
                clen,
            )?;
            self.track(arrival_ev);
            // Upload the chunk the moment it lands; completion is a
            // fence-tracked event completed by the scheduled action.
            let up_ev = ctx.new_event();
            let dev = dev.clone();
            let buf = bufs[slot].clone();
            ctx.handle().schedule_at(arrive, move |h| {
                let done = copy::h2d(h, &dev, &buf, 0, dst_base + coff, clen)
                    .expect("staged-get bounds pre-checked");
                h.complete_at(up_ev, done);
            });
            self.track(up_ev);
        }
        Ok(())
    }

    /// `ompx_put`: push `len` bytes of the symmetric allocation `src`
    /// (from this rank's primary device, at `src_delta`) into rank
    /// `target`'s copy of `dst` at `dst_delta`. Offset translation is
    /// pure arithmetic (Fig. 2): same symmetric offset, target's base.
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &mut self,
        ctx: &mut Ctx,
        target: usize,
        dst: GPtr,
        dst_delta: u64,
        src: GPtr,
        src_delta: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        assert!(dst_delta + len <= dst.len && src_delta + len <= src.len, "put out of bounds");
        let src_flat = self.primary();
        let dst_flat = self.shared.world.devices_of(target).start;
        self.put_dev(ctx, src_flat, src.off + src_delta, dst_flat, dst.off + dst_delta, len)
    }

    /// `ompx_get`: fetch from rank `target`'s symmetric allocation into
    /// this rank's primary device.
    #[allow(clippy::too_many_arguments)]
    pub fn get(
        &mut self,
        ctx: &mut Ctx,
        target: usize,
        src: GPtr,
        src_delta: u64,
        dst: GPtr,
        dst_delta: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        assert!(src_delta + len <= src.len && dst_delta + len <= dst.len, "get out of bounds");
        let local_flat = self.primary();
        let remote_flat = self.shared.world.devices_of(target).start;
        self.get_dev(ctx, local_flat, dst.off + dst_delta, remote_flat, src.off + src_delta, len)
    }

    /// Resolve a remote asymmetric allocation to its data offset: cache
    /// hit is free; a miss pays a real 8-byte fetch of the second-level
    /// wrapper from the remote device (paper §3.2's two-stage access).
    pub fn resolve_asym(
        &mut self,
        ctx: &mut Ctx,
        target_flat: usize,
        ptr: &AsymPtr,
    ) -> Result<u64, DiompError> {
        let s = self.shared.clone();
        if let Some(off) = self.cache.lookup(&s.asym_reg, target_flat, ptr.wrapper_off) {
            return Ok(off);
        }
        // Stage 1: fetch the wrapper (8 bytes) from the remote segment.
        let staging = diomp_device::HostBuf::zeroed(8);
        let ev = gasnet::get_nb(
            ctx,
            &s.world,
            self.rank,
            Loc::host(staging.clone(), 0),
            s.seg[target_flat],
            ptr.wrapper_off,
            8,
        )?;
        ctx.wait_free(ev);
        let authoritative =
            s.asym_reg.lookup(target_flat, ptr.wrapper_off).expect("asym ptr freed mid-access");
        if s.world.devs.mode == diomp_device::DataMode::Functional {
            let fetched = u64::from_le_bytes(staging.to_bytes()[..8].try_into().unwrap());
            assert_eq!(
                fetched, authoritative,
                "wrapper bytes in device memory diverged from the registry"
            );
        }
        self.cache.insert(target_flat, ptr.wrapper_off, authoritative);
        Ok(authoritative)
    }

    /// `ompx_put` into a remote *asymmetric* allocation: two-stage unless
    /// the second-level pointer is cached.
    #[allow(clippy::too_many_arguments)]
    pub fn put_asym(
        &mut self,
        ctx: &mut Ctx,
        target: usize,
        dst: &AsymPtr,
        dst_delta: u64,
        src: GPtr,
        src_delta: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        let target_flat = self.shared.world.devices_of(target).start;
        let data_off = self.resolve_asym(ctx, target_flat, dst)?;
        let src_flat = self.primary();
        self.put_dev(ctx, src_flat, src.off + src_delta, target_flat, data_off + dst_delta, len)
    }

    /// `ompx_get` from a remote asymmetric allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn get_asym(
        &mut self,
        ctx: &mut Ctx,
        target: usize,
        src: &AsymPtr,
        src_delta: u64,
        dst: GPtr,
        dst_delta: u64,
        len: u64,
    ) -> Result<(), DiompError> {
        let target_flat = self.shared.world.devices_of(target).start;
        let data_off = self.resolve_asym(ctx, target_flat, src)?;
        let local_flat = self.primary();
        self.get_dev(ctx, local_flat, dst.off + dst_delta, target_flat, data_off + src_delta, len)
    }
}
