//! Runtime configuration.
//!
//! Construction is staged: [`DiompConfigBuilder`] records *what the
//! caller chose* (explicit knobs, plus whether autotuning was requested)
//! and [`DiompConfigBuilder::build`] resolves everything **once** —
//! defaults, then the autotuner for the final `(platform, conduit)`
//! pair, then explicit settings on top. Precedence (**explicit > tuned >
//! default**) is therefore order-independent by construction rather than
//! by careful re-derivation inside each setter, which is what the
//! (since-removed) mutate-in-place setters on [`DiompConfig`] had to do.

use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, PlatformSpec, QosClass};
use diomp_xccl::{CollEngine, ServerSpec};

use crate::galloc::AllocKind;

/// Which communication middleware DiOMP runs over (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Conduit {
    /// GASNet-EX (default; all platforms).
    GasnetEx,
    /// GPI-2 (InfiniBand platforms only).
    Gpi2,
}

/// Large-message RMA pipelining knobs (paper §3.2: overlapping
/// device-side copies with conduit transfers).
///
/// When enabled, inter-node transfers larger than `chunk_bytes` are split
/// into `chunk_bytes`-sized chunks that pipeline through the conduit:
/// chunk device-copies overlap in-flight network injections (bounded by
/// `max_inflight` staging slots), and chunk completions round-robin
/// across `n_queues` GPI-2 queues.
///
/// Three ways to obtain one, in precedence order (**explicit > tuned >
/// disabled**):
///
/// * an explicit literal / [`PipelineConfig::enabled`] always wins,
/// * [`PipelineConfig::auto`] derives the parameters from the platform
///   tables per conduit (the transport autotuner, [`crate::tune`]),
/// * the base default is [`PipelineConfig::disabled`] so the paper's
///   published curves — including the Fig. 4a Platform A put anomaly —
///   reproduce unchanged; the ablation benches flip it on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineConfig {
    /// Chunk size in bytes; inter-node messages strictly larger than this
    /// are pipelined. `u64::MAX` disables chunking.
    pub chunk_bytes: u64,
    /// Bound on staged chunks in flight per transfer (staging-slot ring).
    pub max_inflight: usize,
    /// GPI-2 queues chunk completions are round-robined across.
    pub n_queues: u8,
}

impl PipelineConfig {
    /// Pipelining on, with defaults tuned for the paper's platforms:
    /// 4 MiB chunks, 4 staging slots, 4 queues.
    pub fn enabled() -> Self {
        PipelineConfig { chunk_bytes: 4 << 20, max_inflight: 4, n_queues: 4 }
    }

    /// Pipelining off: every message is one monolithic transfer.
    pub fn disabled() -> Self {
        PipelineConfig { chunk_bytes: u64::MAX, max_inflight: 1, n_queues: 1 }
    }

    /// Tuned pipelining: parameters derived from `platform`'s calibrated
    /// tables for `conduit` by the transport autotuner — chunk size from
    /// the conduit curve's knee, window depth from latency coverage,
    /// queue count from the NIC layout. See [`crate::tune::Tuner`].
    pub fn auto(platform: &diomp_sim::PlatformSpec, conduit: Conduit) -> Self {
        crate::tune::Tuner::new(platform, conduit).pipeline()
    }

    /// Is a transfer of `len` bytes pipelined under this config?
    pub fn pipelines(&self, len: u64) -> bool {
        len > self.chunk_bytes
    }

    /// Chunk boundaries `(offset, len)` of a `len`-byte transfer: all
    /// chunks are `chunk_bytes` long except a possibly-shorter tail. A
    /// zero-length transfer still yields one `(0, 0)` chunk so callers
    /// issue exactly one conduit operation (overhead and completion
    /// semantics match the unchunked path).
    pub fn chunks(&self, len: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        let chunk = self.chunk_bytes.max(1);
        (0..len.div_ceil(chunk).max(1)).map(move |i| (i * chunk, chunk.min(len - i * chunk)))
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Device-binding strategy (paper §3.3 "hierarchical device binding").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Binding {
    /// One device per rank — compatible with conventional MPI layouts.
    DevicePerRank,
    /// One rank per node owning every device on it — the single-process
    /// multi-GPU mode that keeps all CPU threads under one OpenMP runtime.
    RankPerNode,
}

/// Full configuration of a DiOMP job.
#[derive(Clone)]
pub struct DiompConfig {
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Device binding strategy.
    pub binding: Binding,
    /// Conduit selection.
    pub conduit: Conduit,
    /// Symmetric+asymmetric global heap size per device, bytes.
    pub heap_bytes: u64,
    /// Fraction of the heap reserved for the asymmetric region.
    pub asym_frac: f64,
    /// Symmetric allocator strategy.
    pub allocator: AllocKind,
    /// Functional (real bytes) or CostOnly (paper-scale sweeps).
    pub mode: DataMode,
    /// Override the modelled device memory capacity (tests).
    pub mem_capacity: Option<u64>,
    /// Use GPUDirect P2P for intra-node transfers when available
    /// (disable to force the IPC staging path).
    pub use_p2p: bool,
    /// Large-message chunked pipelining (off by default; the paper's
    /// published curves are unpipelined).
    pub pipeline: PipelineConfig,
    /// Drain `ompx_fence` completions with one batched `wait_all` park
    /// instead of one park per pending event. Identical virtual-time
    /// results; far fewer scheduler entries.
    pub batched_fence: bool,
    /// GASPI recovery budget: how many times a GPI-2 post that hits an
    /// errored queue is retried (purge → back off → repost) before the
    /// [`crate::DiompError::Fabric`] error propagates to the caller.
    pub max_rma_retries: u32,
    /// Initial virtual-time backoff before the first repost; doubles on
    /// every subsequent retry of the same operation.
    pub retry_backoff_us: f64,
    /// OMPCCL completion-time engine: the chunk-pipelined ring protocol
    /// over the simulated links (default — Fig. 6 emerges from protocol
    /// structure), the autotuner's protocol-selecting
    /// [`CollEngine::Auto`], or the calibrated whole-collective profiles
    /// (the curve-fit path, kept for ablation).
    pub coll_engine: CollEngine,
    /// Dedicated in-network reduction servers (paper-style SHARP-like
    /// offload): carve this many nodes out of every communicator as
    /// data-passive reduction servers. Disabled by default — the
    /// published single-job curves carry no server nodes. With servers
    /// provisioned, large allreduces offload onto them (the fourth
    /// [`CollEngine::Auto`] regime, or [`CollEngine::ReductionServer`]
    /// explicitly); every other op, and every degraded case, falls back
    /// to the client-side schedules.
    pub coll_servers: ServerSpec,
    /// QoS class of this job's collective traffic on a shared fabric.
    /// Communicators created by the runtime charge their chunk transfers
    /// to a flow with this class's weight; on a contention-armed
    /// simulator concurrent jobs then fair-share each link by weight
    /// (see `diomp_sim::QosClass`). Irrelevant — and bit-neutral — when
    /// the simulator runs a single job or contention is disarmed.
    pub qos: QosClass,
}

impl DiompConfig {
    /// Sensible defaults for a cluster: device-per-rank binding, GASNet-EX
    /// conduit, 16 MiB functional heap, buddy allocator.
    pub fn new(cluster: ClusterSpec) -> Self {
        DiompConfig {
            cluster,
            binding: Binding::DevicePerRank,
            conduit: Conduit::GasnetEx,
            heap_bytes: 16 << 20,
            asym_frac: 0.25,
            allocator: AllocKind::Buddy,
            mode: DataMode::Functional,
            mem_capacity: None,
            use_p2p: true,
            pipeline: PipelineConfig::disabled(),
            batched_fence: true,
            max_rma_retries: 3,
            retry_backoff_us: 50.0,
            coll_engine: CollEngine::default(),
            coll_servers: ServerSpec::default(),
            qos: QosClass::default(),
        }
    }

    /// Convenience: platform + node count, all devices used.
    pub fn on_platform(platform: PlatformSpec, nodes: usize) -> Self {
        Self::new(ClusterSpec::full_nodes(platform, nodes))
    }

    /// Start a staged builder for a cluster — the supported way to
    /// configure a job. See [`DiompConfigBuilder`].
    pub fn builder(cluster: ClusterSpec) -> DiompConfigBuilder {
        DiompConfigBuilder::new(cluster)
    }

    /// Staged builder for platform + node count, all devices used.
    pub fn builder_on(platform: PlatformSpec, nodes: usize) -> DiompConfigBuilder {
        DiompConfigBuilder::new(ClusterSpec::full_nodes(platform, nodes))
    }

    /// Number of ranks implied by the binding.
    pub fn nranks(&self) -> usize {
        match self.binding {
            Binding::DevicePerRank => self.cluster.total_gpus(),
            Binding::RankPerNode => self.cluster.nodes,
        }
    }
}

/// Staged builder for [`DiompConfig`].
///
/// Records the caller's choices without resolving anything; [`build`]
/// then resolves **once**, in fixed order — base defaults, autotuned
/// parameters (if [`tuned`] was requested) for the *final* conduit, and
/// explicit settings last. Two consequences, guaranteed by construction
/// rather than by setter bookkeeping:
///
/// * **explicit > tuned > default**, regardless of call order —
///   `b.with_pipeline(p).tuned()` and `b.tuned().with_pipeline(p)` build
///   the same config;
/// * the autotuner never runs against a stale conduit — tuning sees the
///   conduit the job will actually use, however late it was selected.
///
/// ```
/// use diomp_core::{Conduit, DiompConfig, PipelineConfig};
/// use diomp_sim::PlatformSpec;
///
/// let cfg = DiompConfig::builder_on(PlatformSpec::platform_c(), 2)
///     .with_conduit(Conduit::Gpi2)
///     .tuned()
///     .with_heap(64 << 20)
///     .build();
/// assert!(cfg.pipeline != PipelineConfig::disabled());
/// ```
///
/// [`build`]: DiompConfigBuilder::build
/// [`tuned`]: DiompConfigBuilder::tuned
#[derive(Clone)]
pub struct DiompConfigBuilder {
    cluster: ClusterSpec,
    binding: Option<Binding>,
    conduit: Option<Conduit>,
    heap_bytes: Option<u64>,
    asym_frac: Option<f64>,
    allocator: Option<AllocKind>,
    mode: Option<DataMode>,
    mem_capacity: Option<u64>,
    use_p2p: Option<bool>,
    pipeline: Option<PipelineConfig>,
    batched_fence: Option<bool>,
    rma_retry: Option<(u32, f64)>,
    coll_engine: Option<CollEngine>,
    coll_servers: Option<ServerSpec>,
    qos: Option<QosClass>,
    tuned: bool,
}

impl DiompConfigBuilder {
    /// Builder over a cluster, all knobs at their defaults.
    pub fn new(cluster: ClusterSpec) -> Self {
        DiompConfigBuilder {
            cluster,
            binding: None,
            conduit: None,
            heap_bytes: None,
            asym_frac: None,
            allocator: None,
            mode: None,
            mem_capacity: None,
            use_p2p: None,
            pipeline: None,
            batched_fence: None,
            rma_retry: None,
            coll_engine: None,
            coll_servers: None,
            qos: None,
            tuned: false,
        }
    }

    /// Request the transport autotuner: at [`build`] the RMA pipeline
    /// and the collective engine are derived from the platform tables
    /// for the final conduit — unless set explicitly, which always wins.
    ///
    /// [`build`]: DiompConfigBuilder::build
    pub fn tuned(mut self) -> Self {
        self.tuned = true;
        self
    }

    /// Set the device binding strategy.
    pub fn with_binding(mut self, b: Binding) -> Self {
        self.binding = Some(b);
        self
    }

    /// Select the conduit. Order-independent with [`tuned`]: the
    /// autotuner always runs for the conduit recorded at [`build`].
    ///
    /// [`tuned`]: DiompConfigBuilder::tuned
    /// [`build`]: DiompConfigBuilder::build
    pub fn with_conduit(mut self, c: Conduit) -> Self {
        self.conduit = Some(c);
        self
    }

    /// Set the per-device global heap size in bytes.
    pub fn with_heap(mut self, bytes: u64) -> Self {
        self.heap_bytes = Some(bytes);
        self
    }

    /// Set the fraction of the heap reserved for the asymmetric region.
    pub fn with_asym_frac(mut self, frac: f64) -> Self {
        self.asym_frac = Some(frac);
        self
    }

    /// Set the symmetric allocator strategy.
    pub fn with_allocator(mut self, k: AllocKind) -> Self {
        self.allocator = Some(k);
        self
    }

    /// Set the data mode.
    pub fn with_mode(mut self, m: DataMode) -> Self {
        self.mode = Some(m);
        self
    }

    /// Cap the modelled device memory (test OOM paths).
    pub fn with_mem_capacity(mut self, cap: u64) -> Self {
        self.mem_capacity = Some(cap);
        self
    }

    /// Force the IPC path by disabling GPUDirect P2P.
    pub fn without_p2p(mut self) -> Self {
        self.use_p2p = Some(false);
        self
    }

    /// Configure large-message pipelining explicitly (see
    /// [`PipelineConfig`]); always wins over [`tuned`] derivation.
    ///
    /// [`tuned`]: DiompConfigBuilder::tuned
    pub fn with_pipeline(mut self, p: PipelineConfig) -> Self {
        self.pipeline = Some(p);
        self
    }

    /// Drain fences event-by-event (the pre-`wait_all` behaviour); used
    /// by the scheduler-cost ablation.
    pub fn without_batched_fence(mut self) -> Self {
        self.batched_fence = Some(false);
        self
    }

    /// Configure the GASPI recovery loop for GPI-2 posts: retry budget
    /// and initial (doubling) backoff. `max_retries = 0` disables
    /// recovery — the first queue error propagates.
    pub fn with_rma_retry(mut self, max_retries: u32, backoff_us: f64) -> Self {
        self.rma_retry = Some((max_retries, backoff_us));
        self
    }

    /// Select the OMPCCL completion-time engine explicitly; always wins
    /// over [`tuned`] derivation.
    ///
    /// [`tuned`]: DiompConfigBuilder::tuned
    pub fn with_coll_engine(mut self, e: CollEngine) -> Self {
        self.coll_engine = Some(e);
        self
    }

    /// Price collectives with the calibrated whole-collective profiles
    /// instead of the emergent ring protocol (the ablation baseline).
    pub fn with_profile_collectives(self) -> Self {
        self.with_coll_engine(CollEngine::Profile)
    }

    /// Provision dedicated in-network reduction servers (see
    /// [`DiompConfig::coll_servers`]). Server nodes must come out of the
    /// cluster's node budget; every communicator the runtime creates
    /// carves them from its membership.
    pub fn with_coll_servers(mut self, s: ServerSpec) -> Self {
        self.coll_servers = Some(s);
        self
    }

    /// Set the job's QoS class for shared-fabric contention (see
    /// [`DiompConfig::qos`]).
    pub fn with_qos(mut self, q: QosClass) -> Self {
        self.qos = Some(q);
        self
    }

    /// Resolve the configuration: defaults, then (if requested) the
    /// autotuner for the final `(platform, conduit)` pair, then every
    /// explicit setting on top. The single resolution point is what
    /// makes the precedence order-independent.
    pub fn build(self) -> DiompConfig {
        let mut cfg = DiompConfig::new(self.cluster);
        if let Some(c) = self.conduit {
            cfg.conduit = c;
        }
        if self.tuned {
            let t = crate::tune::Tuner::new(&cfg.cluster.platform, cfg.conduit);
            cfg.pipeline = t.pipeline();
            cfg.coll_engine = t.coll_engine();
        }
        if let Some(b) = self.binding {
            cfg.binding = b;
        }
        if let Some(h) = self.heap_bytes {
            cfg.heap_bytes = h;
        }
        if let Some(f) = self.asym_frac {
            cfg.asym_frac = f;
        }
        if let Some(k) = self.allocator {
            cfg.allocator = k;
        }
        if let Some(m) = self.mode {
            cfg.mode = m;
        }
        if let Some(cap) = self.mem_capacity {
            cfg.mem_capacity = Some(cap);
        }
        if let Some(p2p) = self.use_p2p {
            cfg.use_p2p = p2p;
        }
        if let Some(p) = self.pipeline {
            cfg.pipeline = p;
        }
        if let Some(bf) = self.batched_fence {
            cfg.batched_fence = bf;
        }
        if let Some((r, b)) = self.rma_retry {
            cfg.max_rma_retries = r;
            cfg.retry_backoff_us = b;
        }
        if let Some(e) = self.coll_engine {
            cfg.coll_engine = e;
        }
        if let Some(s) = self.coll_servers {
            cfg.coll_servers = s;
        }
        if let Some(q) = self.qos {
            cfg.qos = q;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        let p = PipelineConfig { chunk_bytes: 4 << 20, max_inflight: 4, n_queues: 4 };
        let len = (13 << 20) + 17; // non-multiple tail
        let chunks: Vec<_> = p.chunks(len).collect();
        assert_eq!(chunks.len(), 4);
        let mut expect_off = 0;
        for &(off, clen) in &chunks {
            assert_eq!(off, expect_off);
            expect_off += clen;
        }
        assert_eq!(expect_off, len);
        assert_eq!(chunks.last().unwrap().1, (1 << 20) + 17);
    }

    #[test]
    fn zero_length_transfer_still_issues_one_op() {
        let p = PipelineConfig::enabled();
        assert_eq!(p.chunks(0).collect::<Vec<_>>(), vec![(0, 0)]);
        let d = PipelineConfig::disabled();
        assert_eq!(d.chunks(0).collect::<Vec<_>>(), vec![(0, 0)]);
    }

    // One regression test per precedence pair of the staged builder:
    // every (explicit setter, tuned) interaction that the old in-place
    // setters had to keep order-independent by hand must stay
    // order-independent under single-shot build() resolution.

    fn base() -> DiompConfigBuilder {
        DiompConfig::builder_on(PlatformSpec::platform_c(), 2)
    }

    #[test]
    fn precedence_explicit_pipeline_beats_tuned() {
        let custom = PipelineConfig { chunk_bytes: 1 << 20, max_inflight: 2, n_queues: 1 };
        assert_eq!(base().with_pipeline(custom).tuned().build().pipeline, custom);
        assert_eq!(base().tuned().with_pipeline(custom).build().pipeline, custom);
    }

    #[test]
    fn precedence_explicit_engine_beats_tuned() {
        let prof = base().with_profile_collectives().tuned().build();
        assert_eq!(prof.coll_engine, CollEngine::Profile);
        // The non-explicit knob is still tuned.
        assert!(prof.pipeline != PipelineConfig::disabled());
        let prof2 = base().tuned().with_profile_collectives().build();
        assert_eq!(prof2.coll_engine, CollEngine::Profile);
    }

    #[test]
    fn precedence_tuning_sees_the_final_conduit() {
        // The autotuner runs once at build(), against the conduit the
        // job will use — whichever side of tuned() it was selected on.
        let gas = base().tuned().build();
        let gpi = base().tuned().with_conduit(Conduit::Gpi2).build();
        assert_ne!(gas.pipeline, gpi.pipeline, "conduit choice must reach the tuner");
        assert_eq!(gpi.pipeline, PipelineConfig::auto(&PlatformSpec::platform_c(), Conduit::Gpi2));
        let gpi_first = base().with_conduit(Conduit::Gpi2).tuned().build();
        assert_eq!(gpi_first.pipeline, gpi.pipeline);
        assert_eq!(gpi_first.coll_engine, gpi.coll_engine);
    }

    #[test]
    fn precedence_untuned_keeps_published_defaults() {
        let cfg = base().with_conduit(Conduit::Gpi2).build();
        assert_eq!(cfg.pipeline, PipelineConfig::disabled());
        assert_eq!(cfg.coll_engine, CollEngine::default());
    }

    #[test]
    fn precedence_qos_defaults_normal_and_explicit_wins() {
        assert_eq!(base().build().qos, QosClass::Normal);
        assert_eq!(base().with_qos(QosClass::High).tuned().build().qos, QosClass::High);
        assert_eq!(base().tuned().with_qos(QosClass::Low).build().qos, QosClass::Low);
    }

    #[test]
    fn tuned_build_matches_the_tuner_tables() {
        // A tuned build must resolve exactly to what the autotuner
        // derives for the final (platform, conduit) pair.
        let cfg = base()
            .with_conduit(Conduit::Gpi2)
            .tuned()
            .with_heap(64 << 20)
            .with_mode(DataMode::CostOnly)
            .build();
        let t = crate::tune::Tuner::new(&cfg.cluster.platform, Conduit::Gpi2);
        assert_eq!(cfg.pipeline, t.pipeline());
        assert_eq!(cfg.coll_engine, t.coll_engine());
        assert_eq!(cfg.heap_bytes, 64 << 20);
        assert_eq!(cfg.conduit, Conduit::Gpi2);
    }

    #[test]
    fn disabled_never_pipelines() {
        let p = PipelineConfig::disabled();
        assert!(!p.pipelines(u64::MAX - 1));
        let e = PipelineConfig::enabled();
        assert!(e.pipelines((4 << 20) + 1));
        assert!(!e.pipelines(4 << 20));
    }
}
