//! Runtime configuration.

use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, PlatformSpec};
use diomp_xccl::CollEngine;

use crate::galloc::AllocKind;

/// Which communication middleware DiOMP runs over (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Conduit {
    /// GASNet-EX (default; all platforms).
    GasnetEx,
    /// GPI-2 (InfiniBand platforms only).
    Gpi2,
}

/// Large-message RMA pipelining knobs (paper §3.2: overlapping
/// device-side copies with conduit transfers).
///
/// When enabled, inter-node transfers larger than `chunk_bytes` are split
/// into `chunk_bytes`-sized chunks that pipeline through the conduit:
/// chunk device-copies overlap in-flight network injections (bounded by
/// `max_inflight` staging slots), and chunk completions round-robin
/// across `n_queues` GPI-2 queues. Disabled by default so the paper's
/// published curves — including the Fig. 4a Platform A put anomaly —
/// reproduce unchanged; the ablation benches flip it on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineConfig {
    /// Chunk size in bytes; inter-node messages strictly larger than this
    /// are pipelined. `u64::MAX` disables chunking.
    pub chunk_bytes: u64,
    /// Bound on staged chunks in flight per transfer (staging-slot ring).
    pub max_inflight: usize,
    /// GPI-2 queues chunk completions are round-robined across.
    pub n_queues: u8,
}

impl PipelineConfig {
    /// Pipelining on, with defaults tuned for the paper's platforms:
    /// 4 MiB chunks, 4 staging slots, 4 queues.
    pub fn enabled() -> Self {
        PipelineConfig { chunk_bytes: 4 << 20, max_inflight: 4, n_queues: 4 }
    }

    /// Pipelining off: every message is one monolithic transfer.
    pub fn disabled() -> Self {
        PipelineConfig { chunk_bytes: u64::MAX, max_inflight: 1, n_queues: 1 }
    }

    /// Is a transfer of `len` bytes pipelined under this config?
    pub fn pipelines(&self, len: u64) -> bool {
        len > self.chunk_bytes
    }

    /// Chunk boundaries `(offset, len)` of a `len`-byte transfer: all
    /// chunks are `chunk_bytes` long except a possibly-shorter tail. A
    /// zero-length transfer still yields one `(0, 0)` chunk so callers
    /// issue exactly one conduit operation (overhead and completion
    /// semantics match the unchunked path).
    pub fn chunks(&self, len: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        let chunk = self.chunk_bytes.max(1);
        (0..len.div_ceil(chunk).max(1)).map(move |i| (i * chunk, chunk.min(len - i * chunk)))
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Device-binding strategy (paper §3.3 "hierarchical device binding").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Binding {
    /// One device per rank — compatible with conventional MPI layouts.
    DevicePerRank,
    /// One rank per node owning every device on it — the single-process
    /// multi-GPU mode that keeps all CPU threads under one OpenMP runtime.
    RankPerNode,
}

/// Full configuration of a DiOMP job.
#[derive(Clone)]
pub struct DiompConfig {
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Device binding strategy.
    pub binding: Binding,
    /// Conduit selection.
    pub conduit: Conduit,
    /// Symmetric+asymmetric global heap size per device, bytes.
    pub heap_bytes: u64,
    /// Fraction of the heap reserved for the asymmetric region.
    pub asym_frac: f64,
    /// Symmetric allocator strategy.
    pub allocator: AllocKind,
    /// Functional (real bytes) or CostOnly (paper-scale sweeps).
    pub mode: DataMode,
    /// Override the modelled device memory capacity (tests).
    pub mem_capacity: Option<u64>,
    /// Use GPUDirect P2P for intra-node transfers when available
    /// (disable to force the IPC staging path).
    pub use_p2p: bool,
    /// Large-message chunked pipelining (off by default; the paper's
    /// published curves are unpipelined).
    pub pipeline: PipelineConfig,
    /// Drain `ompx_fence` completions with one batched `wait_all` park
    /// instead of one park per pending event. Identical virtual-time
    /// results; far fewer scheduler entries.
    pub batched_fence: bool,
    /// OMPCCL completion-time engine: the chunk-pipelined ring protocol
    /// over the simulated links (default — Fig. 6 emerges from protocol
    /// structure) or the calibrated whole-collective profiles (the
    /// curve-fit path, kept for ablation).
    pub coll_engine: CollEngine,
}

impl DiompConfig {
    /// Sensible defaults for a cluster: device-per-rank binding, GASNet-EX
    /// conduit, 16 MiB functional heap, buddy allocator.
    pub fn new(cluster: ClusterSpec) -> Self {
        DiompConfig {
            cluster,
            binding: Binding::DevicePerRank,
            conduit: Conduit::GasnetEx,
            heap_bytes: 16 << 20,
            asym_frac: 0.25,
            allocator: AllocKind::Buddy,
            mode: DataMode::Functional,
            mem_capacity: None,
            use_p2p: true,
            pipeline: PipelineConfig::disabled(),
            batched_fence: true,
            coll_engine: CollEngine::default(),
        }
    }

    /// Convenience: platform + node count, all devices used.
    pub fn on_platform(platform: PlatformSpec, nodes: usize) -> Self {
        Self::new(ClusterSpec::full_nodes(platform, nodes))
    }

    /// Number of ranks implied by the binding.
    pub fn nranks(&self) -> usize {
        match self.binding {
            Binding::DevicePerRank => self.cluster.total_gpus(),
            Binding::RankPerNode => self.cluster.nodes,
        }
    }

    /// Builder-style setters.
    pub fn with_binding(mut self, b: Binding) -> Self {
        self.binding = b;
        self
    }

    /// Select the conduit.
    pub fn with_conduit(mut self, c: Conduit) -> Self {
        self.conduit = c;
        self
    }

    /// Set the per-device global heap size.
    pub fn with_heap(mut self, bytes: u64) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Set the symmetric allocator strategy.
    pub fn with_allocator(mut self, k: AllocKind) -> Self {
        self.allocator = k;
        self
    }

    /// Set the data mode.
    pub fn with_mode(mut self, m: DataMode) -> Self {
        self.mode = m;
        self
    }

    /// Cap the modelled device memory (test OOM paths).
    pub fn with_mem_capacity(mut self, cap: u64) -> Self {
        self.mem_capacity = Some(cap);
        self
    }

    /// Force the IPC path by disabling GPUDirect P2P.
    pub fn without_p2p(mut self) -> Self {
        self.use_p2p = false;
        self
    }

    /// Configure large-message pipelining (see [`PipelineConfig`]).
    pub fn with_pipeline(mut self, p: PipelineConfig) -> Self {
        self.pipeline = p;
        self
    }

    /// Drain fences event-by-event (the pre-`wait_all` behaviour); used
    /// by the scheduler-cost ablation.
    pub fn without_batched_fence(mut self) -> Self {
        self.batched_fence = false;
        self
    }

    /// Select the OMPCCL completion-time engine.
    pub fn with_coll_engine(mut self, e: CollEngine) -> Self {
        self.coll_engine = e;
        self
    }

    /// Price collectives with the calibrated whole-collective profiles
    /// instead of the emergent ring protocol (the ablation baseline).
    pub fn with_profile_collectives(mut self) -> Self {
        self.coll_engine = CollEngine::Profile;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        let p = PipelineConfig { chunk_bytes: 4 << 20, max_inflight: 4, n_queues: 4 };
        let len = (13 << 20) + 17; // non-multiple tail
        let chunks: Vec<_> = p.chunks(len).collect();
        assert_eq!(chunks.len(), 4);
        let mut expect_off = 0;
        for &(off, clen) in &chunks {
            assert_eq!(off, expect_off);
            expect_off += clen;
        }
        assert_eq!(expect_off, len);
        assert_eq!(chunks.last().unwrap().1, (1 << 20) + 17);
    }

    #[test]
    fn zero_length_transfer_still_issues_one_op() {
        let p = PipelineConfig::enabled();
        assert_eq!(p.chunks(0).collect::<Vec<_>>(), vec![(0, 0)]);
        let d = PipelineConfig::disabled();
        assert_eq!(d.chunks(0).collect::<Vec<_>>(), vec![(0, 0)]);
    }

    #[test]
    fn disabled_never_pipelines() {
        let p = PipelineConfig::disabled();
        assert!(!p.pipelines(u64::MAX - 1));
        let e = PipelineConfig::enabled();
        assert!(e.pipelines((4 << 20) + 1));
        assert!(!e.pipelines(4 << 20));
    }
}
