//! Runtime configuration.

use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, PlatformSpec};

use crate::galloc::AllocKind;

/// Which communication middleware DiOMP runs over (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Conduit {
    /// GASNet-EX (default; all platforms).
    GasnetEx,
    /// GPI-2 (InfiniBand platforms only).
    Gpi2,
}

/// Device-binding strategy (paper §3.3 "hierarchical device binding").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Binding {
    /// One device per rank — compatible with conventional MPI layouts.
    DevicePerRank,
    /// One rank per node owning every device on it — the single-process
    /// multi-GPU mode that keeps all CPU threads under one OpenMP runtime.
    RankPerNode,
}

/// Full configuration of a DiOMP job.
#[derive(Clone)]
pub struct DiompConfig {
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Device binding strategy.
    pub binding: Binding,
    /// Conduit selection.
    pub conduit: Conduit,
    /// Symmetric+asymmetric global heap size per device, bytes.
    pub heap_bytes: u64,
    /// Fraction of the heap reserved for the asymmetric region.
    pub asym_frac: f64,
    /// Symmetric allocator strategy.
    pub allocator: AllocKind,
    /// Functional (real bytes) or CostOnly (paper-scale sweeps).
    pub mode: DataMode,
    /// Override the modelled device memory capacity (tests).
    pub mem_capacity: Option<u64>,
    /// Use GPUDirect P2P for intra-node transfers when available
    /// (disable to force the IPC staging path).
    pub use_p2p: bool,
}

impl DiompConfig {
    /// Sensible defaults for a cluster: device-per-rank binding, GASNet-EX
    /// conduit, 16 MiB functional heap, buddy allocator.
    pub fn new(cluster: ClusterSpec) -> Self {
        DiompConfig {
            cluster,
            binding: Binding::DevicePerRank,
            conduit: Conduit::GasnetEx,
            heap_bytes: 16 << 20,
            asym_frac: 0.25,
            allocator: AllocKind::Buddy,
            mode: DataMode::Functional,
            mem_capacity: None,
            use_p2p: true,
        }
    }

    /// Convenience: platform + node count, all devices used.
    pub fn on_platform(platform: PlatformSpec, nodes: usize) -> Self {
        Self::new(ClusterSpec::full_nodes(platform, nodes))
    }

    /// Number of ranks implied by the binding.
    pub fn nranks(&self) -> usize {
        match self.binding {
            Binding::DevicePerRank => self.cluster.total_gpus(),
            Binding::RankPerNode => self.cluster.nodes,
        }
    }

    /// Builder-style setters.
    pub fn with_binding(mut self, b: Binding) -> Self {
        self.binding = b;
        self
    }

    /// Select the conduit.
    pub fn with_conduit(mut self, c: Conduit) -> Self {
        self.conduit = c;
        self
    }

    /// Set the per-device global heap size.
    pub fn with_heap(mut self, bytes: u64) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Set the symmetric allocator strategy.
    pub fn with_allocator(mut self, k: AllocKind) -> Self {
        self.allocator = k;
        self
    }

    /// Set the data mode.
    pub fn with_mode(mut self, m: DataMode) -> Self {
        self.mode = m;
        self
    }

    /// Cap the modelled device memory (test OOM paths).
    pub fn with_mem_capacity(mut self, cap: u64) -> Self {
        self.mem_capacity = Some(cap);
        self
    }

    /// Force the IPC path by disabling GPUDirect P2P.
    pub fn without_p2p(mut self) -> Self {
        self.use_p2p = false;
        self
    }
}
