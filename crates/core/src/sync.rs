//! Synchronisation: `ompx_fence` and `ompx_barrier` (paper §3.2–3.3).

use diomp_sim::Ctx;

use crate::config::Conduit;
use crate::group::DiompGroup;
use crate::runtime::DiompRank;

impl DiompRank {
    /// `ompx_fence`: block until every RMA operation this rank initiated
    /// is remotely complete.
    ///
    /// This is the paper's *hybrid event polling*: the runtime
    /// simultaneously drains network completions (GASNet-EX events or
    /// GPI-2 queues) and device-side stream events in one unified loop,
    /// so neither source of completion stalls the other. In the
    /// simulation the unified loop is realised by waiting on the merged
    /// pending-event list (network events and stream-tail events are the
    /// same [`diomp_sim::EventId`] currency) and then settling the
    /// device stream horizon.
    pub fn fence(&mut self, ctx: &mut Ctx) {
        // Network + stream events, in arrival order. GPI-2 additionally
        // tracks completions on its queues rather than per-op events;
        // *every* queue is drained, not just queue 0.
        let mut pending = std::mem::take(&mut *self.shared.pending[self.rank].lock());
        if self.shared.cfg.conduit == Conduit::Gpi2 {
            pending.extend(diomp_fabric::gpi::take_pending_all(&self.shared.world, self.rank));
        }
        if self.shared.cfg.batched_fence {
            // One wait group over the whole pending set: the task parks
            // once and the completion that empties the set wakes it.
            ctx.wait_all_free(&pending);
        } else {
            // Per-event draining (the scheduler-cost ablation baseline):
            // one park/wake round-trip per still-pending event.
            for ev in pending {
                ctx.wait_free(ev);
            }
        }
        // Device horizon: all streams the RMA path touched.
        for d in self.my_devices() {
            let tail = self.shared.world.devs.dev(d).pool.lock().max_tail();
            ctx.sleep_until(tail);
        }
    }

    /// `ompx_barrier()`: world barrier.
    pub fn barrier(&mut self, ctx: &mut Ctx) {
        self.shared.world.barrier.arrive_and_wait(ctx);
    }

    /// `ompx_barrier(group)`: barrier scoped to a DiOMP group, avoiding
    /// unnecessary global synchronisation (paper §3.3).
    pub fn barrier_group(&mut self, ctx: &mut Ctx, group: &DiompGroup) {
        assert!(group.index_of(self.rank).is_some(), "rank not in group");
        group.barrier.arrive_and_wait(ctx);
    }

    /// `ompx_fence(group)`: local fence plus a group barrier — after it
    /// returns, every member's prior RMA is visible to every member.
    pub fn fence_group(&mut self, ctx: &mut Ctx, group: &DiompGroup) {
        self.fence(ctx);
        self.barrier_group(ctx, group);
    }
}
