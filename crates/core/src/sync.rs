//! Synchronisation: `ompx_fence` and `ompx_barrier` (paper §3.2–3.3).

use diomp_sim::{Ctx, EventId, SimTime, Wait};

use crate::config::Conduit;
use crate::group::DiompGroup;
use crate::runtime::DiompRank;

/// Partial-completion state surfaced by a timed-out bounded fence
/// ([`DiompRank::fence_with`] under [`Wait::Until`]): how much of the
/// pending RMA had already completed when the deadline fired, and which
/// completions are still in flight. The in-flight events remain
/// fence-tracked — a later `fence` (or another bounded fence) picks them
/// up; nothing is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenceTimeout {
    /// Virtual time at which the deadline fired.
    pub at: SimTime,
    /// Operations that completed (and were retired) before the deadline.
    pub completed: usize,
    /// Completion events still in flight, re-tracked for the next fence.
    pub in_flight: Vec<EventId>,
}

impl std::fmt::Display for FenceTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fence timed out at {} with {} completed, {} in flight",
            self.at,
            self.completed,
            self.in_flight.len()
        )
    }
}
impl std::error::Error for FenceTimeout {}

impl DiompRank {
    /// `ompx_fence`: block until every RMA operation this rank initiated
    /// is remotely complete.
    ///
    /// This is the paper's *hybrid event polling*: the runtime
    /// simultaneously drains network completions (GASNet-EX events or
    /// GPI-2 queues) and device-side stream events in one unified loop,
    /// so neither source of completion stalls the other. In the
    /// simulation the unified loop is realised by waiting on the merged
    /// pending-event list (network events and stream-tail events are the
    /// same [`diomp_sim::EventId`] currency) and then settling the
    /// device stream horizon.
    pub fn fence(&mut self, ctx: &mut Ctx) {
        // Network + stream events, in arrival order. GPI-2 additionally
        // tracks completions on its queues rather than per-op events;
        // *every* queue is drained, not just queue 0.
        let mut pending = std::mem::take(&mut *self.shared.pending[self.rank].lock());
        if self.shared.cfg.conduit == Conduit::Gpi2 {
            pending.extend(diomp_fabric::gpi::take_pending_all(&self.shared.world, self.rank));
        }
        if self.shared.cfg.batched_fence {
            // One wait group over the whole pending set: the task parks
            // once and the completion that empties the set wakes it.
            ctx.wait_all_free(&pending);
        } else {
            // Per-event draining (the scheduler-cost ablation baseline):
            // one park/wake round-trip per still-pending event.
            for ev in pending {
                ctx.wait_free(ev);
            }
        }
        // Device horizon: all streams the RMA path touched.
        for d in self.my_devices() {
            let tail = self.shared.world.devs.dev(d).pool.lock().max_tail();
            ctx.sleep_until(tail);
        }
    }

    /// `ompx_fence` with an explicit wait discipline: [`Wait::Block`]
    /// is exactly [`DiompRank::fence`]; [`Wait::Until`] drains what
    /// completes before the virtual-time deadline, and on timeout
    /// reports *which* work is done and which is still in flight
    /// instead of blocking forever on a degraded fabric.
    ///
    /// On `Ok` the fence is complete exactly as [`DiompRank::fence`]. On
    /// `Err` the returned [`FenceTimeout`] carries the partial state; the
    /// in-flight completions stay fence-tracked, so callers can consult
    /// the health vector, shed load, and fence again — the classic GASPI
    /// timeout-poll loop. The device stream horizon is only settled on
    /// success (it cannot be partially waited).
    pub fn fence_with(&mut self, ctx: &mut Ctx, wait: Wait) -> Result<(), FenceTimeout> {
        if matches!(wait, Wait::Block) {
            self.fence(ctx);
            return Ok(());
        }
        let mut pending = std::mem::take(&mut *self.shared.pending[self.rank].lock());
        if self.shared.cfg.conduit == Conduit::Gpi2 {
            pending.extend(diomp_fabric::gpi::take_pending_all(&self.shared.world, self.rank));
        }
        match ctx.wait_all_with(&pending, wait) {
            Ok(()) => {
                for ev in pending {
                    ctx.handle().free_event(ev);
                }
                for d in self.my_devices() {
                    let tail = self.shared.world.devs.dev(d).pool.lock().max_tail();
                    ctx.sleep_until(tail);
                }
                Ok(())
            }
            Err(t) => {
                let mut completed = 0;
                let mut in_flight = Vec::new();
                for ev in pending {
                    if ctx.handle().event_done(ev) {
                        ctx.handle().free_event(ev);
                        completed += 1;
                    } else {
                        in_flight.push(ev);
                    }
                }
                self.shared.pending[self.rank].lock().extend(in_flight.iter().copied());
                Err(FenceTimeout { at: t.at, completed, in_flight })
            }
        }
    }

    /// `ompx_barrier()`: world barrier.
    pub fn barrier(&mut self, ctx: &mut Ctx) {
        self.shared.world.barrier.arrive_and_wait(ctx);
    }

    /// `ompx_barrier(group)`: barrier scoped to a DiOMP group, avoiding
    /// unnecessary global synchronisation (paper §3.3).
    pub fn barrier_group(&mut self, ctx: &mut Ctx, group: &DiompGroup) {
        assert!(group.index_of(self.rank).is_some(), "rank not in group");
        group.barrier.arrive_and_wait(ctx);
    }

    /// `ompx_fence(group)`: local fence plus a group barrier — after it
    /// returns, every member's prior RMA is visible to every member.
    pub fn fence_group(&mut self, ctx: &mut Ctx, group: &DiompGroup) {
        self.fence(ctx);
        self.barrier_group(ctx, group);
    }
}
