//! Global memory management (paper §3.2).
//!
//! The conduit-attached device segment of every device is carved up by a
//! shared layout:
//!
//! ```text
//! ┌──────────────────────────────┬───────────────────────────┐
//! │ symmetric region             │ asymmetric region         │
//! │ (identical offsets on every  │ (per-device sizes; reached│
//! │  device; offset translation  │  through 32-byte second-  │
//! │  is remote_base + offset)    │  level pointers)          │
//! └──────────────────────────────┴───────────────────────────┘
//! ```
//!
//! * [`SymHeap`] — the collective symmetric allocator (linear or buddy).
//! * [`AsymRegion`] / [`AsymRegistry`] — per-device asymmetric
//!   allocations registered under symmetric wrapper slots.
//! * [`PtrCache`] — the remote second-level-pointer cache that removes
//!   the extra round trip from repeated asymmetric accesses.

mod asym;
mod buddy;
mod linear;
mod sym;

pub use asym::{AsymRegion, AsymRegistry, PtrCache, WRAPPER_BYTES};
pub use buddy::BuddyAlloc;
pub use linear::LinearAlloc;
pub use sym::{AllocKind, SymHeap};
