//! Asymmetric allocation: second-level pointers and the remote cache.
//!
//! Asymmetric allocations let each rank contribute a *different* size
//! (paper §3.2, Fig. 2 "as-1"). The consistent-offset property is then
//! lost, so DiOMP allocates a **32-byte second-level pointer wrapper**
//! symmetrically — at the same offset on every device — and stores the
//! device-local data offset inside it. Remote access becomes two-stage:
//! fetch the wrapper, then move the data. The [`PtrCache`] removes the
//! first stage for repeated accesses; the runtime's central management of
//! allocation lifetime keeps cache entries valid until free
//! (paper: "each second-level pointer's cache entry is valid throughout
//! the lifetime of its corresponding memory allocation").

use std::collections::HashMap;

use diomp_device::FreeListAlloc;
use parking_lot::Mutex;

/// Size of a second-level pointer wrapper (paper §3.2: a 32-byte pointer
/// wrapper, uniformly allocated across all ranks for global alignment).
pub const WRAPPER_BYTES: u64 = 32;

/// Per-device allocator over the asymmetric region
/// `[base, base + len)` of each device segment.
pub struct AsymRegion {
    base: u64,
    allocs: Vec<Mutex<FreeListAlloc>>,
}

impl AsymRegion {
    /// Region starting at segment offset `base`, `len` bytes, for
    /// `ndevices` devices.
    pub fn new(base: u64, len: u64, ndevices: usize) -> Self {
        AsymRegion {
            base,
            allocs: (0..ndevices).map(|_| Mutex::new(FreeListAlloc::new(len))).collect(),
        }
    }

    /// Allocate `len` bytes on device `dev` (flat index). Returns the
    /// absolute segment offset.
    pub fn alloc(&self, dev: usize, len: u64) -> Option<u64> {
        self.allocs[dev].lock().alloc(len.max(1), 64).ok().map(|o| o + self.base)
    }

    /// Free an absolute-offset allocation on `dev`.
    pub fn free(&self, dev: usize, abs_off: u64) {
        self.allocs[dev].lock().free(abs_off - self.base).expect("asym free");
    }

    /// Start of the asymmetric region within each segment.
    pub fn base(&self) -> u64 {
        self.base
    }
}

/// Central ground truth for asymmetric allocations:
/// `(device, wrapper offset) → data offset`. The DiOMP runtime owns all
/// allocation and deallocation, so this registry *is* the authority the
/// paper relies on for cache validity.
#[derive(Default)]
pub struct AsymRegistry {
    map: Mutex<HashMap<(usize, u64), u64>>,
}

impl AsymRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation.
    pub fn insert(&self, dev: usize, wrapper: u64, data_off: u64) {
        let prev = self.map.lock().insert((dev, wrapper), data_off);
        assert!(prev.is_none(), "wrapper slot reused while live");
    }

    /// Authoritative lookup.
    pub fn lookup(&self, dev: usize, wrapper: u64) -> Option<u64> {
        self.map.lock().get(&(dev, wrapper)).copied()
    }

    /// Remove on free; stale cache entries die with this entry.
    pub fn remove(&self, dev: usize, wrapper: u64) -> Option<u64> {
        self.map.lock().remove(&(dev, wrapper))
    }
}

/// Per-rank cache of fetched remote second-level pointers.
#[derive(Default)]
pub struct PtrCache {
    map: HashMap<(usize, u64), u64>,
    hits: u64,
    misses: u64,
}

impl PtrCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a remote wrapper, validating against the registry (an
    /// entry whose allocation was freed is dropped). Returns the data
    /// offset on a hit.
    pub fn lookup(&mut self, registry: &AsymRegistry, dev: usize, wrapper: u64) -> Option<u64> {
        match self.map.get(&(dev, wrapper)) {
            Some(&off) => {
                if registry.lookup(dev, wrapper) == Some(off) {
                    self.hits += 1;
                    Some(off)
                } else {
                    self.map.remove(&(dev, wrapper));
                    self.misses += 1;
                    None
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install a fetched wrapper value.
    pub fn insert(&mut self, dev: usize, wrapper: u64, data_off: u64) {
        self.map.insert((dev, wrapper), data_off);
    }

    /// `(hits, misses)` counters (for the `ablation_asym_cache` bench).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_allocates_per_device_independently() {
        let r = AsymRegion::new(1 << 20, 1 << 16, 2);
        let a = r.alloc(0, 1000).unwrap();
        let b = r.alloc(1, 5000).unwrap();
        assert!(a >= 1 << 20 && b >= 1 << 20, "absolute offsets include the base");
        assert_eq!(a, b, "independent allocators may return equal offsets");
        r.free(0, a);
        r.free(1, b);
    }

    #[test]
    fn cache_hits_after_insert_and_invalidates_on_free() {
        let reg = AsymRegistry::new();
        let mut cache = PtrCache::new();
        reg.insert(3, 64, 4096);
        assert_eq!(cache.lookup(&reg, 3, 64), None, "cold cache misses");
        cache.insert(3, 64, 4096);
        assert_eq!(cache.lookup(&reg, 3, 64), Some(4096));
        reg.remove(3, 64);
        assert_eq!(cache.lookup(&reg, 3, 64), None, "freed allocation invalidates");
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "wrapper slot reused")]
    fn registry_rejects_live_slot_reuse() {
        let reg = AsymRegistry::new();
        reg.insert(0, 0, 100);
        reg.insert(0, 0, 200);
    }
}
