//! Linear (bump) heap allocator.
//!
//! One of the two strategies DiOMP uses to carve the conduit-registered
//! global segment into allocations (paper §3.1: "strategies such as a
//! linear heap allocator or a buddy allocator"). O(1) allocation, no
//! per-object free — freeing happens wholesale via `reset` (phase
//! allocation), which fits the collective, phase-structured allocation
//! pattern of SPMD applications.

/// Bump allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct LinearAlloc {
    capacity: u64,
    cursor: u64,
    live: usize,
}

impl LinearAlloc {
    /// Allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LinearAlloc { capacity, cursor: 0, live: 0 }
    }

    /// Allocate `len` bytes aligned to `align` (power of two). Returns the
    /// offset, or `None` if the segment is exhausted.
    pub fn alloc(&mut self, len: u64, align: u64) -> Option<u64> {
        assert!(align.is_power_of_two());
        let off = (self.cursor + align - 1) & !(align - 1);
        let end = off.checked_add(len.max(1))?;
        if end > self.capacity {
            return None;
        }
        self.cursor = end;
        self.live += 1;
        Some(off)
    }

    /// Release one allocation. The space is only reclaimed by `reset`
    /// once every allocation has been released.
    pub fn free(&mut self) {
        assert!(self.live > 0, "free without live allocations");
        self.live -= 1;
    }

    /// Reclaim the whole segment. Panics if allocations are still live.
    pub fn reset(&mut self) {
        assert_eq!(self.live, 0, "reset with {} live allocations", self.live);
        self.cursor = 0;
    }

    /// Bytes consumed so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.cursor
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.cursor
    }

    /// Live allocation count.
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_sequentially_with_alignment() {
        let mut a = LinearAlloc::new(1024);
        assert_eq!(a.alloc(10, 1), Some(0));
        assert_eq!(a.alloc(10, 64), Some(64));
        assert_eq!(a.alloc(10, 64), Some(128));
        assert_eq!(a.used(), 138);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = LinearAlloc::new(100);
        assert!(a.alloc(60, 1).is_some());
        assert!(a.alloc(60, 1).is_none());
        assert!(a.alloc(40, 1).is_some(), "exact fit still works");
    }

    #[test]
    fn reset_requires_all_freed() {
        let mut a = LinearAlloc::new(100);
        a.alloc(10, 1).unwrap();
        a.alloc(10, 1).unwrap();
        a.free();
        a.free();
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.alloc(10, 1), Some(0));
    }

    #[test]
    #[should_panic(expected = "live allocations")]
    fn reset_with_live_allocations_panics() {
        let mut a = LinearAlloc::new(100);
        a.alloc(10, 1).unwrap();
        a.reset();
    }
}
