//! The symmetric heap: collective allocation with offset translation.

use parking_lot::Mutex;

use super::buddy::BuddyAlloc;
use super::linear::LinearAlloc;

/// Which allocator strategy manages the symmetric region (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// O(1) bump allocation, wholesale reclamation.
    Linear,
    /// Power-of-two blocks with splitting/coalescing and per-object free.
    Buddy,
}

enum HeapImpl {
    Linear(LinearAlloc),
    Buddy(BuddyAlloc),
}

/// The shared symmetric-region allocator. One instance serves the whole
/// job: because allocation is collective and the layout is identical on
/// every device, a single allocator *is* the global layout, and a local
/// offset plus a remote segment base is a complete remote address
/// (paper §3.2, Fig. 2).
pub struct SymHeap {
    inner: Mutex<HeapImpl>,
    len: u64,
}

impl SymHeap {
    /// Symmetric heap over `[0, len)` of every device segment.
    pub fn new(kind: AllocKind, len: u64) -> Self {
        let inner = match kind {
            AllocKind::Linear => HeapImpl::Linear(LinearAlloc::new(len)),
            AllocKind::Buddy => {
                // Buddy capacity must be a power of two; round down.
                let cap =
                    if len.is_power_of_two() { len } else { 1u64 << (63 - len.leading_zeros()) };
                HeapImpl::Buddy(BuddyAlloc::new(cap, 32))
            }
        };
        SymHeap { inner: Mutex::new(inner), len }
    }

    /// Allocate `len` bytes (64-byte aligned). Returns the symmetric
    /// offset valid on every device.
    pub fn alloc(&self, len: u64) -> Option<u64> {
        match &mut *self.inner.lock() {
            HeapImpl::Linear(a) => a.alloc(len, 64),
            HeapImpl::Buddy(a) => a.alloc(len),
        }
    }

    /// Free a symmetric allocation (buddy reclaims immediately; linear
    /// defers to a wholesale reset).
    pub fn free(&self, off: u64) {
        match &mut *self.inner.lock() {
            HeapImpl::Linear(a) => {
                let _ = off;
                a.free();
            }
            HeapImpl::Buddy(a) => a.free(off),
        }
    }

    /// Length of the symmetric region.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-length region.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_and_buddy_both_allocate() {
        for kind in [AllocKind::Linear, AllocKind::Buddy] {
            let h = SymHeap::new(kind, 1 << 20);
            let a = h.alloc(1000).unwrap();
            let b = h.alloc(1000).unwrap();
            assert_ne!(a, b, "{kind:?}");
            h.free(b);
            h.free(a);
        }
    }

    #[test]
    fn buddy_rounds_capacity_down_to_power_of_two() {
        let h = SymHeap::new(AllocKind::Buddy, (1 << 20) + 12345);
        // Must still be able to allocate the rounded capacity.
        assert!(h.alloc(1 << 19).is_some());
    }
}
