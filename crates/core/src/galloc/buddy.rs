//! Buddy allocator for the global segment.
//!
//! The second strategy of paper §3.1. Power-of-two block sizes with
//! splitting and coalescing give bounded fragmentation and true
//! per-object free — needed when SPMD phases allocate and release global
//! memory with mixed lifetimes.

use std::collections::{BTreeMap, BTreeSet};

/// Buddy allocator over `[0, capacity)` (capacity is rounded *down* to a
/// power of two times `min_block`).
#[derive(Debug, Clone)]
pub struct BuddyAlloc {
    /// Log2 of the smallest block size.
    min_order: u32,
    /// Log2 of the full segment size.
    max_order: u32,
    /// Free blocks per order: set of offsets.
    free: Vec<BTreeSet<u64>>,
    /// Live allocations: offset → order.
    live: BTreeMap<u64, u32>,
}

impl BuddyAlloc {
    /// Allocator with the given capacity and minimum block size (both
    /// powers of two, `capacity >= min_block`).
    pub fn new(capacity: u64, min_block: u64) -> Self {
        assert!(capacity.is_power_of_two(), "buddy capacity must be a power of two");
        assert!(min_block.is_power_of_two() && min_block >= 1);
        assert!(capacity >= min_block);
        let min_order = min_block.trailing_zeros();
        let max_order = capacity.trailing_zeros();
        let mut free = vec![BTreeSet::new(); (max_order - min_order + 1) as usize];
        free.last_mut().unwrap().insert(0);
        BuddyAlloc { min_order, max_order, free, live: BTreeMap::new() }
    }

    fn order_for(&self, len: u64) -> u32 {
        let len = len.max(1).next_power_of_two();
        len.trailing_zeros().max(self.min_order)
    }

    fn slot(&self, order: u32) -> usize {
        (order - self.min_order) as usize
    }

    /// Allocate at least `len` bytes; the returned offset is aligned to
    /// the block size. Returns `None` when no block is available.
    pub fn alloc(&mut self, len: u64) -> Option<u64> {
        let want = self.order_for(len);
        if want > self.max_order {
            return None;
        }
        // Find the smallest free block that fits.
        let mut order = want;
        while order <= self.max_order && self.free[self.slot(order)].is_empty() {
            order += 1;
        }
        if order > self.max_order {
            return None;
        }
        let slot = self.slot(order);
        let off = *self.free[slot].iter().next().unwrap();
        self.free[slot].remove(&off);
        // Split down to the target order.
        while order > want {
            order -= 1;
            let buddy = off + (1u64 << order);
            let slot = self.slot(order);
            self.free[slot].insert(buddy);
        }
        self.live.insert(off, want);
        Some(off)
    }

    /// Free a previous allocation, coalescing buddies greedily.
    pub fn free(&mut self, off: u64) {
        let mut order = self.live.remove(&off).expect("free of unallocated offset");
        let mut off = off;
        while order < self.max_order {
            let buddy = off ^ (1u64 << order);
            let slot = self.slot(order);
            if !self.free[slot].remove(&buddy) {
                break;
            }
            off = off.min(buddy);
            order += 1;
        }
        let slot = self.slot(order);
        self.free[slot].insert(off);
    }

    /// Block size actually reserved for an allocation of `len` bytes.
    pub fn block_size(&self, len: u64) -> u64 {
        1u64 << self.order_for(len)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total free bytes.
    pub fn total_free(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(i, s)| s.len() as u64 * (1u64 << (self.min_order + i as u32)))
            .sum()
    }

    /// True when the allocator has coalesced back to one maximal block.
    pub fn fully_coalesced(&self) -> bool {
        self.live.is_empty()
            && self.free[self.slot(self.max_order)].len() == 1
            && self.free[..self.slot(self.max_order)].iter().all(|s| s.is_empty())
    }

    /// Live allocation ranges `(offset, block_len)` — for invariant tests.
    pub fn live_ranges(&self) -> Vec<(u64, u64)> {
        self.live.iter().map(|(&o, &ord)| (o, 1u64 << ord)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_power_of_two_blocks() {
        let mut b = BuddyAlloc::new(1024, 32);
        assert_eq!(b.block_size(33), 64);
        assert_eq!(b.block_size(5), 32, "min block floor");
        let x = b.alloc(100).unwrap();
        assert_eq!(x % 128, 0, "offset aligned to its block size");
    }

    #[test]
    fn split_and_coalesce_roundtrip() {
        let mut b = BuddyAlloc::new(1024, 32);
        let offs: Vec<u64> = (0..8).map(|_| b.alloc(100).unwrap()).collect(); // 8×128 = full
        assert!(b.alloc(1).is_none(), "segment exhausted");
        for o in &offs {
            b.free(*o);
        }
        assert!(b.fully_coalesced(), "all blocks must merge back");
        assert_eq!(b.alloc(1024), Some(0), "full-size allocation possible again");
    }

    #[test]
    fn buddies_merge_only_with_their_pair() {
        let mut b = BuddyAlloc::new(256, 32);
        let a = b.alloc(32).unwrap(); // 0
        let c = b.alloc(32).unwrap(); // 32
        let d = b.alloc(32).unwrap(); // 64
        b.free(a);
        b.free(d);
        // 0 and 64 are not buddies of each other; nothing above order 5 yet.
        assert!(!b.fully_coalesced());
        b.free(c);
        assert!(b.alloc(128).is_some(), "0..128 coalesced after c freed");
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut b = BuddyAlloc::new(256, 32);
        let a = b.alloc(32).unwrap();
        b.free(a);
        b.free(a);
    }

    #[test]
    fn no_live_overlap_under_churn() {
        let mut b = BuddyAlloc::new(4096, 32);
        let mut held = Vec::new();
        for i in 0..64u64 {
            if i % 3 == 0 && !held.is_empty() {
                b.free(held.swap_remove((i as usize * 7) % held.len()));
            } else if let Some(o) = b.alloc(32 + (i % 5) * 40) {
                held.push(o);
            }
            // Invariant: live blocks never overlap.
            let mut ranges = b.live_ranges();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
        }
    }
}
