//! Multi-tenant job descriptions.
//!
//! A [`JobSpec`] names one tenant of a shared fabric: when it arrives,
//! and which QoS class its collective traffic gets. The workload engine
//! (crate `diomp-apps`) replays a set of overlapping `JobSpec`s against
//! one contention-armed simulator; each job owns its communicator —
//! built with the job's QoS class via [`JobSpec::comm_opts`] — so its
//! chunk transfers are charged to a flow with that class's weight and
//! concurrent jobs fair-share every wire they collide on.

use diomp_sim::{Dur, QosClass};
use diomp_xccl::CommOpts;

/// One tenant job of a shared-fabric workload.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable job name; keys the per-job latency/bandwidth rows
    /// in the benchmark output.
    pub name: String,
    /// QoS class of the job's collective traffic (weighted fair share
    /// on every contended wire).
    pub qos: QosClass,
    /// Virtual-time arrival offset from the start of the workload.
    pub arrival: Dur,
}

impl JobSpec {
    /// A job arriving at `arrival` with `qos`-class traffic.
    pub fn new(name: impl Into<String>, qos: QosClass, arrival: Dur) -> Self {
        JobSpec { name: name.into(), qos, arrival }
    }

    /// Communicator options for this job: its QoS class, everything
    /// else default. Pass to `XcclComm::init` so the job's collectives
    /// are charged to a flow of the right weight.
    pub fn comm_opts(&self) -> CommOpts {
        CommOpts { qos: self.qos, ..CommOpts::default() }
    }
}
