//! Multi-tenant job descriptions.
//!
//! A [`JobSpec`] names one tenant of a shared fabric: when it arrives,
//! which QoS class its collective traffic gets, and which collective
//! engine / server provisioning its communicator is built with. The
//! workload engine (crate `diomp-apps`) replays a set of overlapping
//! `JobSpec`s against one contention-armed simulator; each job owns its
//! communicator — built via [`JobSpec::comm_opts`] — so its chunk
//! transfers are charged to a flow with that class's weight and
//! concurrent jobs fair-share every wire they collide on.

use diomp_sim::{Dur, QosClass};
use diomp_xccl::{CollEngine, CommOpts, ServerSpec};

/// One tenant job of a shared-fabric workload.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable job name; keys the per-job latency/bandwidth rows
    /// in the benchmark output.
    pub name: String,
    /// QoS class of the job's collective traffic (weighted fair share
    /// on every contended wire).
    pub qos: QosClass,
    /// Virtual-time arrival offset from the start of the workload.
    pub arrival: Dur,
    /// Collective engine the job's communicator runs.
    pub engine: CollEngine,
    /// In-network reduction servers carved from the job's communicator
    /// (disabled by default; see `diomp_xccl::ServerSpec`). A job with
    /// servers gets a second flow for its server fan-back traffic, so
    /// per-job fabric accounting still attributes every byte.
    pub servers: ServerSpec,
    /// Elastic-recovery retry budget: how many times a collective the
    /// job lost to a member death may be re-run on the shrunk
    /// communicator before the job is declared failed. Each retry backs
    /// off exponentially in *virtual* time (base backoff doubling per
    /// attempt), modelling the reconnection storms a real rebuild rides
    /// out. 0 (the default) disables job-level retry: the first
    /// detected death fails the job.
    pub max_retries: u32,
}

impl JobSpec {
    /// A job arriving at `arrival` with `qos`-class traffic, running
    /// the default engine with no reduction servers.
    pub fn new(name: impl Into<String>, qos: QosClass, arrival: Dur) -> Self {
        JobSpec {
            name: name.into(),
            qos,
            arrival,
            engine: CollEngine::default(),
            servers: ServerSpec::default(),
            max_retries: 0,
        }
    }

    /// Select the job's collective engine.
    pub fn with_engine(mut self, e: CollEngine) -> Self {
        self.engine = e;
        self
    }

    /// Provision in-network reduction servers on the job's communicator.
    pub fn with_servers(mut self, s: ServerSpec) -> Self {
        self.servers = s;
        self
    }

    /// Set the elastic-recovery retry budget (see
    /// [`JobSpec::max_retries`]).
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Communicator options for this job: its QoS class, engine and
    /// server provisioning, everything else default. Pass to
    /// `XcclComm::init` so the job's collectives are charged to a flow
    /// of the right weight.
    pub fn comm_opts(&self) -> CommOpts {
        CommOpts {
            qos: self.qos,
            engine: self.engine,
            servers: self.servers,
            ..CommOpts::default()
        }
    }
}
