//! DiOMP groups (`ompx_group_t`, paper §3.3).
//!
//! A group partitions the communication domain like an MPI communicator,
//! but is decoupled from rank boundaries: synchronisation
//! (`ompx_barrier`, `ompx_fence`) and OMPCCL collectives can be scoped to
//! any subset, and groups can be *split* and *merged* dynamically to
//! follow program phases.

use std::collections::HashMap;
use std::sync::Arc;

use diomp_fabric::{BarrierDomain, ExchangeDomain};
use diomp_sim::{Ctx, Dur};
use diomp_xccl::XcclComm;
use parking_lot::Mutex;

/// Shared state of one group. `Arc<GroupShared>` is the `ompx_group_t`
/// handle.
pub struct GroupShared {
    /// Member ranks, sorted ascending (canonical form).
    pub ranks: Vec<usize>,
    /// Group-scoped barrier.
    pub barrier: BarrierDomain,
    /// Group-scoped bootstrap all-gather.
    pub exch: ExchangeDomain<u64>,
    /// Lazily initialised OMPCCL backend communicator, one slot per
    /// member (each rank runs its own `ncclCommInitRank`).
    pub(crate) comms: Vec<Mutex<Option<Arc<XcclComm>>>>,
}

/// The `ompx_group_t` handle.
pub type DiompGroup = Arc<GroupShared>;

impl GroupShared {
    /// This rank's index within the group, or `None` if not a member.
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.ranks.binary_search(&rank).ok()
    }

    /// Number of member ranks.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }
}

/// Registry mapping canonical member lists to shared group state, so
/// every member that derives the same membership gets the same barrier /
/// exchange / communicator objects.
pub struct GroupRegistry {
    hop: Dur,
    map: Mutex<HashMap<Vec<usize>, DiompGroup>>,
}

impl GroupRegistry {
    /// Registry with the given per-hop synchronisation latency.
    pub fn new(hop: Dur) -> Self {
        GroupRegistry { hop, map: Mutex::new(HashMap::new()) }
    }

    /// Get or create the group with exactly these members (sorted,
    /// deduplicated internally).
    pub fn get_or_create(&self, mut ranks: Vec<usize>) -> DiompGroup {
        ranks.sort_unstable();
        ranks.dedup();
        assert!(!ranks.is_empty(), "a group needs at least one member");
        self.map
            .lock()
            .entry(ranks.clone())
            .or_insert_with(|| {
                let n = ranks.len();
                Arc::new(GroupShared {
                    ranks,
                    barrier: BarrierDomain::new(n, self.hop),
                    exch: ExchangeDomain::new(n, self.hop),
                    comms: (0..n).map(|_| Mutex::new(None)).collect(),
                })
            })
            .clone()
    }
}

/// Split a parent group by `(color, key)` — every member of `parent`
/// must call. Members sharing a color form a new group, ordered by
/// `(key, rank)` (MPI `Comm_split` semantics). Returns this rank's new
/// group.
pub fn group_split(
    ctx: &mut Ctx,
    registry: &GroupRegistry,
    parent: &DiompGroup,
    my_rank: usize,
    color: u32,
    key: u32,
) -> DiompGroup {
    let idx = parent.index_of(my_rank).expect("rank not in parent group");
    let packed = ((color as u64) << 32) | key as u64;
    let all = parent.exch.exchange(ctx, idx, packed);
    let mut members: Vec<(u32, usize)> = all
        .iter()
        .zip(&parent.ranks)
        .filter(|(&p, _)| (p >> 32) as u32 == color)
        .map(|(&p, &r)| ((p & 0xFFFF_FFFF) as u32, r))
        .collect();
    members.sort_unstable();
    registry.get_or_create(members.into_iter().map(|(_, r)| r).collect())
}

/// Merge two groups into one (paper §3.3 "group recomposition": multiple
/// existing groups can be dynamically merged into a new logical group).
/// Every member of *either* group must call; members of both count once.
pub fn group_merge(
    ctx: &mut Ctx,
    registry: &GroupRegistry,
    a: &DiompGroup,
    b: &DiompGroup,
    my_rank: usize,
) -> DiompGroup {
    assert!(
        a.index_of(my_rank).is_some() || b.index_of(my_rank).is_some(),
        "rank {my_rank} is in neither group"
    );
    let mut ranks = a.ranks.clone();
    ranks.extend_from_slice(&b.ranks);
    let merged = registry.get_or_create(ranks);
    // Synchronise the union before first use.
    merged.barrier.arrive_and_wait(ctx);
    merged
}
