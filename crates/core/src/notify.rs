//! Notified one-sided RMA: `ompx_put_notify` and ranged notification
//! draining (GPI-2 conduit only).
//!
//! The GASPI-style alternative to fence/barrier synchronisation: a put
//! carries a notification id+value that becomes visible at the *target*
//! strictly after the payload, so the target learns about remote-write
//! completion without a round of global synchronisation. This is the
//! primitive behind notification-driven halo exchange
//! (`diomp_apps::minimod` with `HaloStyle::NotifyWaitsome`): post one
//! notified put per face, then drain arrivals with one
//! [`DiompRank::notify_waitsome`] loop — no per-step barrier.
//!
//! Notified puts always travel through the GPI-2 conduit (like real
//! GASPI, where same-node writes still go through the runtime): they are
//! not routed to the GPUDirect-P2P/IPC fast paths and are not
//! chunk-pipelined — the notification must trail the *whole* payload,
//! which a single conduit write guarantees by FIFO link order.

use diomp_fabric::gpi;
use diomp_sim::{Ctx, Wait};

use crate::config::Conduit;
use crate::error::DiompError;
use crate::gptr::GPtr;
use crate::runtime::DiompRank;

impl DiompRank {
    /// `ompx_put_notify`: like [`DiompRank::put`], but once the payload
    /// is deposited at rank `target`, notification `id` with `value`
    /// (non-zero) becomes visible on the target's notification board.
    ///
    /// Local completion is tracked on the conduit queues and drained by
    /// `ompx_fence` like any other RMA. Remote completion is what the
    /// notification itself signals — the target observes it with
    /// [`DiompRank::notify_wait`] / [`DiompRank::notify_waitsome`].
    ///
    /// Requires [`Conduit::Gpi2`] (and therefore an InfiniBand platform).
    #[allow(clippy::too_many_arguments)]
    pub fn put_notify(
        &mut self,
        ctx: &mut Ctx,
        target: usize,
        dst: GPtr,
        dst_delta: u64,
        src: GPtr,
        src_delta: u64,
        len: u64,
        id: u32,
        value: u64,
    ) -> Result<(), DiompError> {
        assert!(
            dst_delta + len <= dst.len && src_delta + len <= src.len,
            "put_notify out of bounds"
        );
        assert!(
            self.shared.cfg.conduit == Conduit::Gpi2,
            "put_notify requires the GPI-2 conduit (DiompConfigBuilder::with_conduit)"
        );
        let s = self.shared.clone();
        let src_flat = self.primary();
        let dst_flat = s.world.devices_of(target).start;
        // Spread notified writes across the configured queue set by id so
        // independent faces do not serialise their completion tracking.
        let nq = s.cfg.pipeline.n_queues.max(1) as u32;
        let q = gpi::QueueId((id % nq) as u8);
        let rank = self.rank;
        let src_loc = diomp_fabric::Loc::dev(src_flat, s.seg_base[src_flat] + src.off + src_delta);
        let seg = s.seg[dst_flat];
        let dst_off = dst.off + dst_delta;
        // Notified puts run under the same GASPI recovery loop as plain
        // RMA: an errored queue is purged and the whole write_notify
        // reposted (payload + notification travel together, so the retry
        // re-arms both).
        let world = s.world.clone();
        self.gpi_retry(ctx, &s.world, q, move |ctx| {
            gpi::write_notify(ctx, &world, rank, q, src_loc.clone(), seg, dst_off, len, id, value)
        })?;
        Ok(())
    }

    /// Fail fast on conduit misuse: draining a board nobody can post to
    /// would otherwise surface as an opaque whole-simulation deadlock.
    fn require_gpi2(&self, what: &str) {
        assert!(
            self.shared.cfg.conduit == Conduit::Gpi2,
            "{what} requires the GPI-2 conduit (DiompConfigBuilder::with_conduit)"
        );
    }

    /// Block until some notification in `[first_id, first_id + num_ids)`
    /// has arrived at this rank; atomically consume the lowest posted id
    /// and return `(id, value)` (`gaspi_notify_waitsome` +
    /// `gaspi_notify_reset`). Parks once on the whole range. The
    /// blocking convenience over [`DiompRank::notify_waitsome_with`].
    pub fn notify_waitsome(&mut self, ctx: &mut Ctx, first_id: u32, num_ids: u32) -> (u32, u64) {
        self.notify_waitsome_with(ctx, first_id, num_ids, Wait::Block)
            .expect("GASPI_BLOCK cannot time out")
    }

    /// [`DiompRank::notify_waitsome`] under an explicit wait discipline
    /// (`gaspi_notify_waitsome` with `GASPI_BLOCK` or a real timeout).
    /// On [`DiompError::Fabric`] timeout nothing is consumed; late
    /// notifications stay posted for the next wait — the building block
    /// of lost-notification recovery protocols.
    pub fn notify_waitsome_with(
        &mut self,
        ctx: &mut Ctx,
        first_id: u32,
        num_ids: u32,
        wait: Wait,
    ) -> Result<(u32, u64), DiompError> {
        self.require_gpi2("notify_waitsome");
        gpi::notify_waitsome(ctx, &self.shared.world, self.rank, first_id, num_ids, wait)
            .map_err(Into::into)
    }

    /// Block until notification `id` arrives at this rank; consume and
    /// return its value. Single-id [`DiompRank::notify_waitsome`].
    pub fn notify_wait(&mut self, ctx: &mut Ctx, id: u32) -> u64 {
        self.require_gpi2("notify_wait");
        gpi::notify_wait(ctx, &self.shared.world, self.rank, id)
    }

    /// Non-blocking consume of notification `id` at this rank
    /// (`gaspi_notify_reset`): the posted value, or `None`.
    pub fn notify_reset(&self, ctx: &Ctx, id: u32) -> Option<u64> {
        self.require_gpi2("notify_reset");
        gpi::notify_reset(ctx, &self.shared.world, self.rank, id)
    }

    /// The fabric's per-rank health vector (`gaspi_state_vec`).
    pub fn health(&self) -> diomp_fabric::HealthVec {
        self.shared.world.health()
    }
}
