//! # diomp-core — the DiOMP-Offloading runtime
//!
//! The paper's primary contribution: a unified runtime that fuses PGAS
//! global memory, OpenMP target offloading, and portable device-side
//! collectives (OMPCCL).
//!
//! * [`DiompRuntime::run`] boots a simulated job; every rank gets a
//!   [`DiompRank`] carrying the `ompx_*` API.
//! * Global memory: collective symmetric allocation with O(1) offset
//!   translation ([`DiompRank::alloc_sym`]), asymmetric allocation via
//!   32-byte second-level pointers with a remote-pointer cache
//!   ([`DiompRank::alloc_asym`]), over linear or buddy heap strategies.
//! * RMA: `ompx_put` / `ompx_get` with topology-aware hierarchical path
//!   selection (conduit / IPC / GPUDirect P2P / local).
//! * Synchronisation: `ompx_fence` (hybrid network+stream completion)
//!   and group-scoped `ompx_barrier`.
//! * Groups: `ompx_group_t` with split and merge recomposition.
//! * OMPCCL: `ompx_bcast` / `ompx_allreduce` / `ompx_reduce` /
//!   `ompx_allgather` over NCCL/RCCL-like backends.
//! * Target regions: mapped allocations intercepted into the global
//!   segment (mapping-table rows gain `Seg_offset`, Fig. 1b).
//!
//! ```
//! use diomp_core::{DiompConfig, DiompRuntime};
//! use diomp_sim::PlatformSpec;
//!
//! let cfg = DiompConfig::on_platform(PlatformSpec::platform_a(), 2);
//! DiompRuntime::run(cfg, |ctx, rank| {
//!     let ptr = rank.alloc_sym(ctx, 4096).unwrap();
//!     let peer = (rank.rank + 1) % rank.nranks();
//!     rank.put(ctx, peer, ptr, 0, ptr, 0, 1024).unwrap();
//!     rank.fence(ctx);
//!     rank.barrier(ctx);
//! })
//! .unwrap();
//! ```

#![warn(missing_docs)]

mod config;
mod error;
pub mod galloc;
mod gptr;
mod group;
mod job;
mod notify;
mod ompccl;
pub mod recovery;
mod rma;
mod runtime;
mod sync;
mod target;
pub mod tune;

pub use config::{Binding, Conduit, DiompConfig, DiompConfigBuilder, PipelineConfig};
pub use diomp_xccl::{
    crossover_bytes, dbt_crossover_bytes, default_nrings, rserver_crossover_bytes, AutoConfig,
    CollEngine, CommOpts, DeviceBuf, QosClass, RailPolicy, RingConfig, ServerLayout,
    ServerPlacement, ServerSpec, UniqueId, XcclComm, XcclOp,
};
pub use error::DiompError;
pub use galloc::{AllocKind, BuddyAlloc, LinearAlloc, PtrCache, WRAPPER_BYTES};
pub use gptr::{AsymPtr, GPtr};
pub use group::{group_merge, group_split, DiompGroup, GroupRegistry, GroupShared};
pub use job::JobSpec;
pub use recovery::{survivors, BufSpec, Checkpoint, RecoveryConfig};
pub use runtime::{DiompRank, DiompRuntime, DiompShared};
pub use sync::FenceTimeout;
pub use target::DiompTarget;
pub use tune::{TuneTable, Tuner};

// Re-export the pieces apps need without importing every crate.
pub use diomp_fabric::{FabricError, HealthVec, RankHealth, ReduceOp};
