//! OMPCCL — the OpenMP Collective Communication Layer (paper §3.3).
//!
//! A portable, OpenMP-compatible facade over vendor collective libraries
//! (NCCL/RCCL — here `diomp-xccl`). The runtime owns communicator setup:
//! on first use of a group, the group's root generates a UniqueId,
//! broadcasts it over the CPU-side bootstrap channel, and every member
//! initialises its backend communicator. Collectives then operate
//! directly on global-heap device buffers — no staging, no registration,
//! because the buffers already live in the conduit segment.
//!
//! The C-level API the paper proposes maps 1:1 onto these methods:
//!
//! ```c
//! ompx_bcast(ptr, size, group);        // → DiompRank::bcast
//! ompx_allreduce(ptr, size, op, group) // → DiompRank::allreduce
//! ompx_reduce(ptr, size, op, root, group)
//! #pragma ompx target device_bcast(var, group)  // sugar over the same
//! ```

use std::sync::Arc;

use diomp_fabric::ReduceOp;
use diomp_sim::Ctx;
use diomp_xccl::{CommOpts, DeviceBuf, UniqueId, XcclComm, XcclOp};

use crate::gptr::GPtr;
use crate::group::DiompGroup;
use crate::runtime::DiompRank;

impl DiompRank {
    /// Get (initialising on first use) the OMPCCL backend communicator
    /// for a group. Every member must reach this together the first time
    /// (it performs the UniqueId broadcast and per-rank init).
    pub fn ompccl_comm(&mut self, ctx: &mut Ctx, group: &DiompGroup) -> Arc<XcclComm> {
        let idx = group.index_of(self.rank).expect("rank not in group");
        if let Some(c) = group.comms[idx].lock().clone() {
            return c;
        }
        // Root generates the UniqueId; the CPU-side bootstrap (group
        // exchange) broadcasts it (paper §3.3).
        let candidate = if idx == 0 { UniqueId::generate().bits() } else { 0 };
        let bits = group.exch.exchange(ctx, idx, candidate)[0];
        let comm = XcclComm::init(
            ctx,
            &self.shared.world,
            group.ranks.clone(),
            self.rank,
            UniqueId::from_bits(bits),
            CommOpts {
                engine: self.shared.cfg.coll_engine,
                servers: self.shared.cfg.coll_servers,
                qos: self.shared.cfg.qos,
                ..CommOpts::default()
            },
        );
        *group.comms[idx].lock() = Some(comm.clone());
        comm
    }

    /// Buffers of all this rank's devices for a symmetric allocation.
    fn my_bufs(&self, ptr: GPtr) -> Vec<DeviceBuf> {
        self.my_devices()
            .map(|flat| DeviceBuf { flat, off: self.dev_addr(flat, ptr.off) })
            .collect()
    }

    /// `ompx_bcast`: device-side broadcast of `len` bytes at `ptr` from
    /// `root`'s primary device to every device in the group.
    pub fn bcast(&mut self, ctx: &mut Ctx, group: &DiompGroup, root: usize, ptr: GPtr, len: u64) {
        assert!(len <= ptr.len);
        let comm = self.ompccl_comm(ctx, group);
        let root_flat = self.shared.world.devices_of(root).start;
        let root_pos = comm.ring_pos(root_flat);
        let bufs = self.my_bufs(ptr);
        comm.collective(ctx, self.rank, bufs, XcclOp::Broadcast { root: root_pos }, len);
    }

    /// `ompx_allreduce`: element-wise reduction across every device in
    /// the group; all devices receive the result.
    pub fn allreduce(
        &mut self,
        ctx: &mut Ctx,
        group: &DiompGroup,
        ptr: GPtr,
        len: u64,
        op: ReduceOp,
    ) {
        assert!(len <= ptr.len);
        let comm = self.ompccl_comm(ctx, group);
        let bufs = self.my_bufs(ptr);
        comm.collective(ctx, self.rank, bufs, XcclOp::AllReduce { op }, len);
    }

    /// `ompx_reduce`: reduction onto `root`'s primary device.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &mut self,
        ctx: &mut Ctx,
        group: &DiompGroup,
        root: usize,
        ptr: GPtr,
        len: u64,
        op: ReduceOp,
    ) {
        assert!(len <= ptr.len);
        let comm = self.ompccl_comm(ctx, group);
        let root_flat = self.shared.world.devices_of(root).start;
        let root_pos = comm.ring_pos(root_flat);
        let bufs = self.my_bufs(ptr);
        comm.collective(ctx, self.rank, bufs, XcclOp::Reduce { root: root_pos, op }, len);
    }

    /// `ompx_allgather`: device `i`'s `len` bytes land at ring offset
    /// `i*len` of every device's buffer (buffer must hold
    /// `ndevices × len`).
    pub fn allgather(&mut self, ctx: &mut Ctx, group: &DiompGroup, ptr: GPtr, len: u64) {
        let comm = self.ompccl_comm(ctx, group);
        assert!(comm.ndevices() as u64 * len <= ptr.len, "allgather buffer too small");
        let bufs = self.my_bufs(ptr);
        comm.collective(ctx, self.rank, bufs, XcclOp::AllGather, len);
    }
}
