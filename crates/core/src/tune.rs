//! The transport autotuner (paper §IV–V portability): derive per-
//! platform, per-conduit transport parameters from the calibrated
//! platform tables instead of hard-coding constants.
//!
//! DiOMP's portability story is that the *runtime* adapts to the fabric:
//! the same program must pick sensible chunk sizes, queue counts and
//! collective protocols on Slingshot + A100, Slingshot + MI250X, and
//! NDR IB + GH200. The [`Tuner`] reads the [`diomp_sim::PlatformSpec`]
//! tables and answers three questions:
//!
//! * **How big must a pipeline chunk be?** Large enough that the
//!   conduit's per-operation overhead stops mattering: the knee of the
//!   conduit's achieved-bandwidth curve
//!   ([`diomp_sim::BwCurve::knee_bytes`] at [`KNEE_FRAC`] of the
//!   asymptote) — per-op overheads differ per platform and conduit, so
//!   the chunk size genuinely follows the tables.
//! * **How deep must the pipeline be?** Deep enough that wire latency
//!   plus injection overhead hide under one in-flight chunk; at the
//!   knee a chunk's wire time already dwarfs both, so a double-buffered
//!   window usually suffices (that is *why* the knee is the right chunk
//!   size).
//! * **Which collective protocol?** The [`CollEngine::Auto`] engine with
//!   an LL hop cost read from the active conduit's tables; the
//!   per-(op, device count) crossover itself is computed in
//!   `diomp-xccl` from the same platform spec
//!   ([`diomp_xccl::crossover_bytes`]).
//!
//! Precedence everywhere: **explicit config > tuned > disabled** — an
//! explicit [`PipelineConfig`]/[`CollEngine`] always wins, `.tuned()`
//! derives from the tables, and the base default stays disabled/ring so
//! the paper's published (unpipelined) curves reproduce unchanged.

use diomp_fabric::ReduceOp;
use diomp_sim::{BwCurve, PlatformId, PlatformSpec};
use diomp_xccl::{
    default_nrings, rserver_crossover_bytes, AutoConfig, CollEngine, RingConfig, ServerLayout,
    XcclOp,
};

use crate::config::{Conduit, PipelineConfig};

/// Fraction of the conduit's asymptotic bandwidth a single chunk must
/// achieve: the knee query that sizes pipeline chunks. 0.95 keeps the
/// amortised per-chunk overhead near 5 %.
pub const KNEE_FRAC: f64 = 0.95;

/// Pipeline chunk offsets are kept 4 KiB-aligned (page granularity for
/// the host staging buffers).
const CHUNK_ALIGN: u64 = 4 << 10;

/// Derived transport parameters for one `(platform, conduit)` pair — the
/// autotuner's output, kept as a plain value so benches and docs can
/// print per-platform tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneTable {
    /// Which paper platform the parameters were derived for.
    pub platform: PlatformId,
    /// Which conduit they apply to.
    pub conduit: Conduit,
    /// Knee-derived large-message RMA pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Collective protocol-selection parameters (LL hop cost, regime
    /// guardrails, and the live per-op ring fallbacks) for
    /// [`CollEngine::Auto`].
    pub auto: AutoConfig,
}

/// The transport autotuner: queries the platform tables and derives
/// [`TuneTable`]s. See the module docs for the derivations.
pub struct Tuner<'a> {
    platform: &'a PlatformSpec,
    conduit: Conduit,
}

impl<'a> Tuner<'a> {
    /// Tuner for one `(platform, conduit)` pair.
    pub fn new(platform: &'a PlatformSpec, conduit: Conduit) -> Self {
        Tuner { platform, conduit }
    }

    /// The conduit's single-operation achieved-bandwidth curve. A GPI-2
    /// request on a platform without GPI-2 falls back to the GASNet-EX
    /// curve (mirroring the runtime, which cannot run GPI-2 there
    /// either).
    fn rma_curve(&self) -> BwCurve {
        match self.conduit {
            Conduit::GasnetEx => self.platform.gasnet_rma_curve(),
            Conduit::Gpi2 => {
                self.platform.gpi_rma_curve().unwrap_or_else(|| self.platform.gasnet_rma_curve())
            }
        }
    }

    /// Per-operation initiator overhead of the conduit, µs (what a chunk
    /// or a fused LL send pays before touching the wire) — the sim's
    /// shared per-conduit formulas, GASNet fallback where GPI-2 is
    /// unavailable.
    fn op_overhead_us(&self) -> f64 {
        match self.conduit {
            Conduit::Gpi2 => self
                .platform
                .gpi_op_overhead_us()
                .unwrap_or_else(|| self.platform.gasnet_op_overhead_us()),
            Conduit::GasnetEx => self.platform.gasnet_op_overhead_us(),
        }
    }

    /// Asymptotic wire efficiency of the active conduit (same fallback).
    fn wire_eff(&self) -> f64 {
        match (self.conduit, &self.platform.gpi) {
            (Conduit::Gpi2, Some(g)) => g.eff,
            _ => self.platform.gasnet.eff,
        }
    }

    /// Knee-derived RMA pipeline parameters (see module docs):
    /// `chunk_bytes` from the conduit curve's [`KNEE_FRAC`] knee;
    /// `max_inflight` holds one chunk on the wire, one in a host staging
    /// copy (D2H/H2D runs nearly as long as a wire chunk on every
    /// platform, so the staged regimes need a slot for it), plus enough
    /// to cover latency + injection overhead; `n_queues` is two per NIC
    /// for GPI-2 (so queue drains interleave across rails) and a single
    /// logical queue for GASNet-EX (which has no queue concept).
    pub fn pipeline(&self) -> PipelineConfig {
        let curve = self.rma_curve();
        let knee = curve.knee_bytes(KNEE_FRAC);
        let chunk_bytes = knee.div_ceil(CHUNK_ALIGN) * CHUNK_ALIGN;
        let chunk_us = chunk_bytes as f64 / (curve.asymptote_gbps() * 1e3);
        let cover = (self.platform.net.latency_us + self.op_overhead_us()) / chunk_us;
        let max_inflight = (cover.ceil() as usize + 2).clamp(3, 8);
        let n_queues = match self.conduit {
            Conduit::GasnetEx => 1,
            Conduit::Gpi2 => (2 * self.platform.net.nics_per_node).clamp(1, 8) as u8,
        };
        PipelineConfig { chunk_bytes, max_inflight, n_queues }
    }

    /// Table-tuned ring chunk/window for `op` — [`RingConfig::auto`] at
    /// the platform's full-node rail count ([`default_nrings`]). The
    /// per-chunk step cost and the per-edge bottleneck bandwidth both
    /// come from the platform's collective tables, so the derived
    /// chunks genuinely differ per platform *and* per op class.
    pub fn ring_config(&self, op: &XcclOp) -> RingConfig {
        RingConfig::auto(self.platform, op, default_nrings(self.platform))
    }

    /// Protocol-selection parameters for [`CollEngine::Auto`]: the LL
    /// hop cost and wire efficiency are the active conduit's fused-send
    /// initiation cost and asymptotic efficiency (no separate completion
    /// round — the flag rides with the payload), through
    /// [`AutoConfig::for_conduit`], the single home of the conversions
    /// and remaining defaults. The *live* tuned ring configurations are
    /// threaded in, so the crossover pricing and the fallback engine can
    /// never diverge (the PR 5 headline bugfix).
    pub fn auto_config(&self) -> AutoConfig {
        AutoConfig::for_conduit(
            self.op_overhead_us(),
            self.wire_eff(),
            self.ring_config(&XcclOp::Broadcast { root: 0 }),
            self.ring_config(&XcclOp::AllReduce { op: ReduceOp::SumF32 }),
        )
    }

    /// The tuned collective engine.
    pub fn coll_engine(&self) -> CollEngine {
        CollEngine::Auto(self.auto_config())
    }

    /// Model-level reduction-server crossover for a full-node layout of
    /// `client_nodes` + `server_nodes`: the smallest allreduce size from
    /// which offloading onto the servers beats the table-tuned ring at
    /// every larger size (0 when the band never opens — no servers, or a
    /// server NIC pool too starved to absorb the fan-back). Priced from
    /// the same live ring configuration the engine would fall back to.
    /// Capacity planning only — the engine re-derives its own boundary
    /// per communicator from the *live* (health-filtered) server set.
    pub fn rserver_crossover(&self, client_nodes: usize, server_nodes: usize) -> u64 {
        let layout = ServerLayout::full_nodes(self.platform, client_nodes, server_nodes);
        let n = client_nodes * self.platform.gpus_per_node.max(1);
        rserver_crossover_bytes(
            self.platform,
            &XcclOp::AllReduce { op: ReduceOp::SumF32 },
            n,
            default_nrings(self.platform),
            &layout,
            &self.auto_config(),
        )
    }

    /// The full derived parameter set.
    pub fn table(&self) -> TuneTable {
        TuneTable {
            platform: self.platform.id,
            conduit: self.conduit,
            pipeline: self.pipeline(),
            auto: self.auto_config(),
        }
    }
}

impl TuneTable {
    /// Derive the table for one `(platform, conduit)` pair.
    pub fn derive(platform: &PlatformSpec, conduit: Conduit) -> TuneTable {
        Tuner::new(platform, conduit).table()
    }

    /// Table-tuned ring chunk/window for broadcast-shaped collectives
    /// (broadcast, all-gather) — a view of the live config carried in
    /// [`TuneTable::auto`], so the reported value and the engine's
    /// fallback can never diverge.
    pub fn ring_bcast(&self) -> RingConfig {
        self.auto.ring_bcast
    }

    /// Table-tuned ring chunk/window for allreduce-shaped collectives
    /// (allreduce, reduce) — same single source as
    /// [`TuneTable::ring_bcast`].
    pub fn ring_allred(&self) -> RingConfig {
        self.auto.ring_allred
    }

    /// Tables for every paper platform over its supported conduits, in
    /// figure order (the per-platform defaults documented in the README).
    pub fn all() -> Vec<TuneTable> {
        let mut out = Vec::new();
        for p in PlatformSpec::all() {
            out.push(TuneTable::derive(&p, Conduit::GasnetEx));
            if p.gpi.is_some() {
                out.push(TuneTable::derive(&p, Conduit::Gpi2));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_parameters_differ_across_platforms() {
        // The acceptance bar of the autotuner: parameters must come from
        // the tables, not constants — at least two platforms disagree.
        let a = TuneTable::derive(&PlatformSpec::platform_a(), Conduit::GasnetEx);
        let b = TuneTable::derive(&PlatformSpec::platform_b(), Conduit::GasnetEx);
        let c = TuneTable::derive(&PlatformSpec::platform_c(), Conduit::GasnetEx);
        assert_ne!(a.pipeline.chunk_bytes, b.pipeline.chunk_bytes);
        assert_ne!(a.pipeline.chunk_bytes, c.pipeline.chunk_bytes);
        assert_ne!(a.auto.ll_hop_ns, c.auto.ll_hop_ns);
    }

    #[test]
    fn conduits_tune_differently_on_the_infiniband_platform() {
        let c = PlatformSpec::platform_c();
        let gasnet = TuneTable::derive(&c, Conduit::GasnetEx);
        let gpi = TuneTable::derive(&c, Conduit::Gpi2);
        assert_ne!(gasnet.pipeline.chunk_bytes, gpi.pipeline.chunk_bytes);
        assert_eq!(gasnet.pipeline.n_queues, 1, "GASNet-EX has no queues");
        assert!(gpi.pipeline.n_queues >= 2, "GPI-2 spreads across queues");
        assert_ne!(gasnet.auto.ll_hop_ns, gpi.auto.ll_hop_ns);
    }

    #[test]
    fn tuned_chunks_sit_at_the_conduit_knee() {
        for p in PlatformSpec::all() {
            let t = Tuner::new(&p, Conduit::GasnetEx);
            let pipe = t.pipeline();
            let curve = p.gasnet_rma_curve();
            // The chunk achieves ≈ KNEE_FRAC of asymptotic bandwidth and
            // is meaningfully smaller than the old 4 MiB constant.
            let frac = curve.gbps(pipe.chunk_bytes) / curve.asymptote_gbps();
            assert!(
                (frac - KNEE_FRAC).abs() < 0.02,
                "{}: chunk {} achieves {frac:.3} of asymptote",
                p.name,
                pipe.chunk_bytes
            );
            assert!(pipe.chunk_bytes.is_multiple_of(CHUNK_ALIGN));
            assert!((2..=8).contains(&pipe.max_inflight));
            assert!(pipe.pipelines(pipe.chunk_bytes + 1));
        }
    }

    #[test]
    fn gpi_request_on_non_ib_platform_falls_back_to_gasnet() {
        let a = PlatformSpec::platform_a();
        assert_eq!(
            TuneTable::derive(&a, Conduit::Gpi2).pipeline.chunk_bytes,
            TuneTable::derive(&a, Conduit::GasnetEx).pipeline.chunk_bytes
        );
    }

    #[test]
    fn derived_defaults_match_the_documented_tables() {
        // README.md ("The transport autotuner") and docs/ARCHITECTURE.md
        // print these exact derived values; DESIGN.md D12/D13 quote the
        // chunk sizes. If this test fails after a deliberate change to
        // the knee fractions, CHUNK_ALIGN, or the platform tables,
        // update those three docs alongside the expectations here.
        // Columns: RMA pipeline chunk, LL hop, ring chunk/window for the
        // broadcast-shaped and allreduce-shaped op classes.
        let expect = [
            (PlatformId::A, Conduit::GasnetEx, 684032u64, 1500u64, (4096u64, 7), (16384u64, 5)),
            (PlatformId::B, Conduit::GasnetEx, 598016, 1400, (4096, 4), (4096, 3)),
            (PlatformId::C, Conduit::GasnetEx, 978944, 2100, (28672, 5), (36864, 4)),
            (PlatformId::C, Conduit::Gpi2, 864256, 1800, (28672, 5), (36864, 4)),
        ];
        let all = TuneTable::all();
        assert_eq!(all.len(), expect.len());
        for (t, (pid, conduit, chunk, hop_ns, bcast, allred)) in all.iter().zip(expect) {
            assert_eq!((t.platform, t.conduit), (pid, conduit));
            assert_eq!(t.pipeline.chunk_bytes, chunk, "{pid:?}/{conduit:?} documented chunk");
            assert_eq!(t.pipeline.max_inflight, 3, "{pid:?}/{conduit:?} documented window");
            assert_eq!(t.auto.ll_hop_ns, hop_ns, "{pid:?}/{conduit:?} documented LL hop");
            assert_eq!(
                (t.ring_bcast().chunk_bytes, t.ring_bcast().max_inflight),
                bcast,
                "{pid:?}/{conduit:?} documented bcast ring tuning"
            );
            assert_eq!(
                (t.ring_allred().chunk_bytes, t.ring_allred().max_inflight),
                allred,
                "{pid:?}/{conduit:?} documented allred ring tuning"
            );
        }
    }

    #[test]
    fn tuned_rings_are_threaded_live_and_differ_per_op() {
        // The PR 5 headline bugfix at the tuner level: the AutoConfig the
        // engine runs must carry exactly the per-op ring derivation
        // (crossover pricing and fallback can never diverge), and the
        // derivation is genuine — the op classes' calibrated step costs
        // differ, so their rings do too.
        let platform = PlatformSpec::platform_a();
        let tuner = Tuner::new(&platform, Conduit::GasnetEx);
        let a = tuner.table();
        assert_eq!(a.ring_bcast(), tuner.ring_config(&XcclOp::Broadcast { root: 0 }));
        assert_eq!(a.ring_allred(), tuner.ring_config(&XcclOp::AllReduce { op: ReduceOp::SumF32 }));
        assert_ne!(a.ring_bcast(), a.ring_allred(), "op classes must tune differently on A");
    }

    #[test]
    fn rserver_crossover_opens_on_provisioned_layouts_only() {
        // Capacity planning via the tuner: matched client/server node
        // counts open the offload band on every platform; a single
        // server node against 15 client nodes is injection-starved on
        // the fan-back and the band stays shut. Zero server nodes is
        // trivially shut.
        for (p, c, s) in [
            (PlatformSpec::platform_a(), 8usize, 8usize),
            (PlatformSpec::platform_b(), 4, 4),
            (PlatformSpec::platform_c(), 8, 8),
        ] {
            let t = Tuner::new(&p, Conduit::GasnetEx);
            let cut = t.rserver_crossover(c, s);
            assert!(
                cut > 0 && cut <= 16 << 20,
                "{}: matched layout must open at or below 16 MiB, got {cut}",
                p.name
            );
            assert_eq!(t.rserver_crossover(c + s, 0), 0, "{}: no servers, no band", p.name);
        }
        let a = PlatformSpec::platform_a();
        assert_eq!(
            Tuner::new(&a, Conduit::GasnetEx).rserver_crossover(15, 1),
            0,
            "a starved server pool must never be priced open"
        );
    }

    #[test]
    fn all_tables_cover_platforms_and_conduits() {
        let all = TuneTable::all();
        assert_eq!(all.len(), 4, "A, B, C over GASNet + C over GPI-2");
        assert!(all.iter().any(|t| t.platform == PlatformId::C && t.conduit == Conduit::Gpi2));
    }
}
