//! DiOMP groups and OMPCCL (paper §3.3): split the world into
//! per-node groups, run group-scoped collectives and barriers, then
//! merge groups back — the dynamic recomposition the paper describes.
//!
//! Run with: `cargo run --example groups_and_collectives`

use diomp::core::{group_merge, group_split, DiompConfig, DiompRuntime, ReduceOp};
use diomp::sim::PlatformSpec;

fn main() {
    let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), 2).with_heap(8 << 20).build();
    DiompRuntime::run(cfg, |ctx, rank| {
        let world = rank.shared.world_group();
        let me = rank.rank;

        // Split by node (color = node id), keyed by rank.
        let node = rank.shared.world.node_of(me) as u32;
        let mine = group_split(ctx, &rank.shared.groups, &world, me, node, me as u32);
        assert_eq!(mine.size(), 4);

        // Group-scoped allreduce: each node sums independently.
        let buf = rank.alloc_sym(ctx, 64).unwrap();
        rank.write_local(rank.primary(), buf, 0, &(me as f64).to_le_bytes());
        rank.barrier(ctx);
        rank.allreduce(ctx, &mine, buf, 8, ReduceOp::SumF64);
        let mut out = [0u8; 8];
        rank.read_local(rank.primary(), buf, 0, &mut out);
        let node_sum = f64::from_le_bytes(out);
        // node 0 sums ranks 0..3 = 6; node 1 sums 4..7 = 22.
        assert_eq!(node_sum, if node == 0 { 6.0 } else { 22.0 });

        // Group-scoped barrier avoids global synchronisation.
        rank.barrier_group(ctx, &mine);

        // Recomposition: merge the two node groups back into one.
        let other: Vec<usize> = if node == 0 { (4..8).collect() } else { (0..4).collect() };
        let other = rank.shared.groups.get_or_create(other);
        let merged = group_merge(ctx, &rank.shared.groups, &mine, &other, me);
        assert_eq!(merged.size(), 8);

        // A collective over the merged group spans everyone again.
        rank.write_local(rank.primary(), buf, 0, &1.0f64.to_le_bytes());
        rank.barrier_group(ctx, &merged);
        rank.allreduce(ctx, &merged, buf, 8, ReduceOp::SumF64);
        rank.read_local(rank.primary(), buf, 0, &mut out);
        assert_eq!(f64::from_le_bytes(out), 8.0);

        if me == 0 {
            println!("groups: split → group allreduce → merge → world allreduce OK");
        }
    })
    .unwrap();
}
