//! Minimod wave propagation (the paper's §4.5 workload): acoustic
//! isotropic kernel, 8th-order stencil, distributed halo exchange.
//!
//! Shows the two halo-exchange styles the paper contrasts (Listings
//! 1–2): DiOMP one-sided + fence vs MPI Isend/Irecv/Waitall — verified
//! bit-for-bit against a serial reference, then timed at paper scale.
//!
//! Run with: `cargo run --release --example minimod_wave`

use diomp::apps::loc;
use diomp::apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp::device::DataMode;
use diomp::sim::PlatformSpec;

fn main() {
    // Correctness: 24³ grid, 5 steps, 4 GPUs, real f32 stencil.
    let small = MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 4,
        nx: 24,
        ny: 24,
        nz: 24,
        steps: 5,
        mode: DataMode::Functional,
        verify: true,
        halo: HaloStyle::Get,
        tuned: false,
    };
    let d = minimod::diomp::run(&small);
    let m = minimod::mpi::run(&small);
    println!("24³ × 5 steps on 4 GPUs  (verified: DiOMP {}, MPI {})", d.verified, m.verified);

    // Programmability: the paper's halo-exchange LoC comparison.
    println!("\nhalo-exchange lines of code:");
    for row in loc::loc_table() {
        println!("  {:<32} {:>4}", row.name, row.lines);
    }

    // Paper scale: 1200³, DiOMP vs MPI per-step time on 16 A100s.
    let big = |steps: usize| MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 16,
        nx: 1200,
        ny: 1200,
        nz: 1200,
        steps,
        mode: DataMode::CostOnly,
        verify: false,
        halo: HaloStyle::Get,
        tuned: false,
    };
    let d = minimod::diomp::run(&big(20));
    let m = minimod::mpi::run(&big(20));
    println!(
        "\n1200³ on 16 GPUs: DiOMP {:.2} ms/step vs MPI {:.2} ms/step",
        d.elapsed.as_ms() / 20.0,
        m.elapsed.as_ms() / 20.0
    );

    // Notified halo exchange (GPI-2 ranged notifications, InfiniBand
    // platform): the waitsome style replaces the per-step barrier with
    // point-to-point completion signalling.
    println!("\nnotified halo styles, 480³ × 10 steps on 8 GH200 nodes:");
    for halo in [HaloStyle::Get, HaloStyle::NotifyOrdered, HaloStyle::NotifyWaitsome] {
        let cfg = MinimodConfig {
            platform: PlatformSpec::platform_c(),
            gpus: 8,
            nx: 480,
            ny: 480,
            nz: 480,
            steps: 10,
            mode: DataMode::CostOnly,
            verify: false,
            halo,
            tuned: false,
        };
        let r = minimod::diomp::run(&cfg);
        println!(
            "  {halo:<16?} {:>7.3} ms/step  ({} scheduler entries)",
            r.elapsed.as_ms() / 10.0,
            r.entries
        );
    }
}
