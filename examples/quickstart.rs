//! Quickstart: boot a 2-node DiOMP job, allocate symmetric global
//! memory, exchange data with one-sided `ompx_put`, and reduce with
//! OMPCCL — the whole paper API in ~50 lines.
//!
//! Run with: `cargo run --example quickstart`

use diomp::core::{DiompConfig, DiompRuntime, ReduceOp};
use diomp::sim::PlatformSpec;

fn main() {
    // Two Platform-A nodes (4×A100 + 4×Slingshot-11 NICs each): 8 ranks,
    // one GPU per rank.
    let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), 2).with_heap(8 << 20).build();

    let report = DiompRuntime::run(cfg, |ctx, rank| {
        let n = rank.nranks();
        let me = rank.rank;

        // Collective symmetric allocation: the same offset is valid on
        // every device, so remote addresses are pure arithmetic.
        let buf = rank.alloc_sym(ctx, 4096).unwrap();
        rank.write_local(rank.primary(), buf, 0, &[me as u8 + 1; 64]);
        rank.barrier(ctx);

        // One-sided ring exchange: put my block into my right
        // neighbour's copy, one fence, done (paper Listing 1 style).
        let right = (me + 1) % n;
        rank.put(ctx, right, buf, 1024, buf, 0, 64).unwrap();
        rank.fence(ctx);
        rank.barrier(ctx);

        let mut got = [0u8; 64];
        rank.read_local(rank.primary(), buf, 1024, &mut got);
        let left = (me + n - 1) % n;
        assert_eq!(got, [left as u8 + 1; 64]);

        // OMPCCL device-side allreduce over the world group.
        let world = rank.shared.world_group();
        rank.write_local(rank.primary(), buf, 0, &1.0f64.to_le_bytes());
        rank.barrier(ctx);
        rank.allreduce(ctx, &world, buf, 8, ReduceOp::SumF64);
        let mut out = [0u8; 8];
        rank.read_local(rank.primary(), buf, 0, &mut out);
        assert_eq!(f64::from_le_bytes(out), n as f64);

        if me == 0 {
            println!("rank 0: ring exchange + allreduce OK at t = {}", ctx.now());
        }
    })
    .unwrap();

    println!(
        "quickstart finished: {} ranks, virtual time {}, {} sim events",
        8, report.end_time, report.entries_processed
    );
}
