//! Distributed ring matrix multiplication (the paper's §4.4 workload).
//!
//! Runs the DiOMP and MPI+OpenMP implementations side by side — first a
//! small Functional-mode problem verified against the serial reference,
//! then a paper-scale CostOnly sweep showing the Fig. 7 scaling trend.
//!
//! Run with: `cargo run --release --example matmul_cannon`

use diomp::apps::cannon::{self, CannonConfig};
use diomp::device::DataMode;
use diomp::sim::PlatformSpec;

fn main() {
    // 1. Correctness at a small size: real bytes, real GEMM arithmetic,
    //    checked against a serial reference on every rank.
    let small = CannonConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 8,
        n: 128,
        mode: DataMode::Functional,
        verify: true,
    };
    let d = cannon::diomp::run(&small);
    let m = cannon::mpi::run(&small);
    println!("N=128 on 8 GPUs  (verified: DiOMP {}, MPI {})", d.verified, m.verified);

    // 2. Paper scale: N = 30240 across 4..32 A100s, virtual-time sweep.
    println!("\nstrong scaling, N = 30240 (speedup vs 4 GPUs):");
    println!("{:>6} {:>10} {:>10}", "GPUs", "DiOMP", "MPI");
    let cfg = |g: usize| CannonConfig {
        platform: PlatformSpec::platform_a(),
        gpus: g,
        n: 30240,
        mode: DataMode::CostOnly,
        verify: false,
    };
    let gpus = [4usize, 8, 16, 32];
    let dbase = cannon::diomp::run(&cfg(4)).elapsed.as_nanos() as f64;
    let mbase = cannon::mpi::run(&cfg(4)).elapsed.as_nanos() as f64;
    for g in gpus {
        let dt = cannon::diomp::run(&cfg(g)).elapsed.as_nanos() as f64;
        let mt = cannon::mpi::run(&cfg(g)).elapsed.as_nanos() as f64;
        println!("{g:>6} {:>10.2} {:>10.2}", dbase / dt, mbase / mt);
    }
}
