//! Asymmetric global memory (paper §3.2, Fig. 2): each rank allocates a
//! different amount; remote access goes through 32-byte second-level
//! pointers, with the remote-pointer cache removing the extra round trip
//! on repeated access.
//!
//! Run with: `cargo run --example asymmetric_alloc`

use diomp::core::{DiompConfig, DiompRuntime};
use diomp::sim::PlatformSpec;

fn main() {
    let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), 2).with_heap(8 << 20).build();
    DiompRuntime::run(cfg, |ctx, rank| {
        let me = rank.rank;

        // Every rank allocates a different size — the case symmetric
        // heaps cannot express (Fig. 2 "as-1").
        let mine = rank.alloc_asym(ctx, 1024 * (me as u64 + 1)).unwrap();
        let scratch = rank.alloc_sym(ctx, 256).unwrap();

        // Publish a pattern in my asymmetric region.
        let dev = rank.primary();
        let addr = rank.shared.seg_base[dev] + mine.my_data_off;
        rank.shared.world.devs.dev(dev).mem.write(addr, &[me as u8 + 10; 64]).unwrap();
        rank.barrier(ctx);

        if me == 0 {
            let target = rank.nranks() - 1;
            // Cold access: fetches the second-level pointer first.
            let t0 = ctx.now();
            rank.get_asym(ctx, target, &mine, 0, scratch, 0, 64).unwrap();
            rank.fence(ctx);
            let cold = ctx.now().since(t0);

            // Warm access: the wrapper is cached; one stage only.
            let t1 = ctx.now();
            rank.get_asym(ctx, target, &mine, 0, scratch, 64, 64).unwrap();
            rank.fence(ctx);
            let warm = ctx.now().since(t1);

            let mut got = [0u8; 64];
            rank.read_local(dev, scratch, 0, &mut got);
            assert_eq!(got, [target as u8 + 10; 64]);
            let (hits, misses) = rank.cache.stats();
            println!("cold two-stage access: {cold}");
            println!("warm cached access:    {warm}");
            println!("pointer cache: {hits} hit(s), {misses} miss(es)");
        }
        rank.barrier(ctx);
        rank.free_asym(ctx, mine);
    })
    .unwrap();
}
