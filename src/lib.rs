//! # diomp — DiOMP-Offloading, reproduced in Rust
//!
//! Facade crate over the DiOMP-Offloading workspace: a PGAS-based
//! distributed heterogeneous OpenMP runtime (SC'25) rebuilt as a
//! functional virtual-time simulation. See `README.md` for the tour and
//! `DESIGN.md` for the substitution map (what the paper ran on real
//! GPU clusters vs. what this reproduction simulates).
//!
//! ```
//! use diomp::sim::{Sim, Dur};
//! let mut sim = Sim::new();
//! sim.spawn("hello", |ctx| ctx.delay(Dur::micros(1.0)));
//! assert_eq!(sim.run().unwrap().end_time.as_us(), 1.0);
//! ```

pub use diomp_apps as apps;
pub use diomp_core as core;
pub use diomp_device as device;
pub use diomp_fabric as fabric;
pub use diomp_sim as sim;
pub use diomp_xccl as xccl;
