//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access, so this reimplements the
//! subset of `crossbeam::channel` the workspace uses — `unbounded()`
//! MPMC-ish channels with cloneable, `Sync` senders — on top of
//! `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust 1.72).

/// Multi-producer channels (the `crossbeam-channel` facade).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel. Clone freely across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41u32).unwrap());
            tx.send(1).unwrap();
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            assert_eq!(sum, 42);
        }

        #[test]
        fn recv_fails_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
