//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access, so this provides a
//! minimal, API-compatible bench harness for the subset the workspace
//! uses: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs its closure a small
//! fixed number of times and prints the mean wall-clock per iteration —
//! enough to track regressions and to execute the assertions the
//! workspace's benches embed, without statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many measured iterations the shim runs per benchmark. Kept small:
/// the workspace's benches are deterministic simulations whose virtual
/// results do not vary across iterations.
const SHIM_ITERS: u64 = 3;

/// Top-level bench context (shim).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }
}

/// A named group of benchmarks (shim).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), f);
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..SHIM_ITERS {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F>(group: Option<&str>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.iters == 0 {
        println!("bench {label:<50} (no iterations)");
    } else {
        let per = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("bench {label:<50} {:>12.3} ms/iter ({} iters)", per * 1e3, b.iters);
    }
}

/// Collect bench functions into a runnable group (shim of
/// `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the named groups (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert_eq!(ran, SHIM_ITERS);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("x", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
