//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency cannot be fetched. This shim reimplements the subset of the
//! `parking_lot` API this workspace uses (`Mutex`, `RwLock`, `Condvar`)
//! on top of `std::sync`, preserving the two semantic differences that
//! matter to callers: locks are not poisoned by panics, and guards are
//! returned directly rather than wrapped in `Result`.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutex that does not poison on panic; `lock()` returns the guard
/// directly, matching `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Unlike `std`, a
    /// panic in another critical section does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard { inner: p.into_inner() },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that does not poison; guards returned directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard { inner: p.into_inner() },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard { inner: p.into_inner() },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic: no poisoning
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
