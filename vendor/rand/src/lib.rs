//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access, so this reimplements the
//! subset of the `rand` 0.8 API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, `gen_bool`. The generator is xoshiro256** seeded through
//! a splitmix64 expander — deterministic across platforms and runs,
//! which is all the simulator requires (it never asks for
//! cryptographic strength).

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to the full
    /// internal state via splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic RNG namespace (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — fast, high-quality, deterministic. Stands in for
    /// `rand`'s ChaCha-based `StdRng`; no caller here needs crypto
    /// strength, only reproducibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.wrapping_sub(range.start) as u128 as u64;
                // Multiply-shift mapping (Lemire); bias is negligible for
                // the spans used here and determinism is what matters.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let f = f64::sample(rng);
        range.start + f * (range.end - range.start)
    }
}

/// Ergonomic extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
