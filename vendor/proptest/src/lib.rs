//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so this reimplements the
//! subset of the proptest API the workspace's property tests use:
//! `Strategy` with `prop_map`/`boxed`, range and collection strategies,
//! `prop_oneof!`, the `proptest!` macro, `ProptestConfig::with_cases`,
//! and `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-case RNG (fixed base seed), so failures reproduce
//! exactly. There is no shrinking: a failing case panics with the case
//! index, which is enough to re-run it deterministically.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner plumbing: the deterministic per-case RNG.
pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies for one generated case.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// RNG for case number `case` (fixed base seed: reproducible).
        pub fn for_case(case: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(0xD10A_F00D ^ case.wrapping_mul(0x9E37_79B9)))
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }

        pub(crate) fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
            use rand::Rng;
            if lo >= hi {
                return lo;
            }
            self.0.gen_range(lo..hi)
        }
    }

    /// Run configuration (the subset the workspace sets).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally-weighted alternatives
    /// (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.uniform_usize(0, self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + hi) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + f * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (Range { start: self.start as f64, end: self.end as f64 }).generate(rng) as f32
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.uniform_usize(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (mirrors the real prelude's re-export).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform choice among alternatives; all arms must generate the same
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assertion inside a property body (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body (shim: `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body (shim: `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` looping over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let run = || -> () { $body };
                    if let Err(p) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!("proptest shim: property '{}' failed at case {case} \
                                   (re-run is deterministic)", stringify!($name));
                        ::std::panic::resume_unwind(p);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::with_cases(64))]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..50, f in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_size_and_map(v in prop::collection::vec((0u32..10).prop_map(|x| x * 2), 1..8)) {
            prop_assert!((1..8).contains(&v.len()));
            for x in v {
                prop_assert!(x % 2 == 0 && x < 20);
            }
        }

        #[test]
        fn oneof_hits_all_arms(v in prop::collection::vec(prop_oneof![
            (0u32..1).prop_map(|_| 'a'),
            (0u32..1).prop_map(|_| 'b'),
        ], 32..33)) {
            // With 32 draws per case and 32 cases, both arms must appear.
            prop_assert!(v.iter().all(|&c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> =
            (0..10).map(|c| s.generate(&mut crate::test_runner::TestRng::for_case(c))).collect();
        let b: Vec<u64> =
            (0..10).map(|c| s.generate(&mut crate::test_runner::TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }
}
