//! Documentation link checker: every relative markdown link (path and
//! `#anchor`) in `README.md`, `DESIGN.md`, `ROADMAP.md` and `docs/`
//! must resolve, so the architecture docs cannot rot silently. Runs as
//! part of `cargo test` and as a dedicated CI step.

use std::path::{Path, PathBuf};

/// Markdown files the checker covers.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = ["README.md", "DESIGN.md", "ROADMAP.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "md") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Extract `[text](target)` link targets, skipping fenced code blocks and
/// inline code spans (Rust attribute syntax like `#[test]` inside
/// backticks is not a link).
fn extract_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans before scanning for links.
        let mut stripped = String::new();
        let mut in_code = false;
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
            } else if !in_code {
                stripped.push(c);
            }
        }
        let bytes = stripped.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(close) = stripped[i + 2..].find(')') {
                    links.push(stripped[i + 2..i + 2 + close].to_string());
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style anchor slug of a heading: lowercase, alphanumerics kept,
/// spaces become hyphens, everything else dropped.
fn slug(heading: &str) -> String {
    let mut s = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() {
            s.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' || c == '_' {
            s.push(if c == ' ' { '-' } else { c });
        }
    }
    s
}

/// All heading anchors of a markdown file.
fn anchors(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            let heading = line.trim_start_matches('#');
            out.push(slug(heading.replace('`', "").as_str()));
        }
    }
    out
}

#[test]
fn all_relative_doc_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = doc_files(&root);
    assert!(files.len() >= 3, "doc set unexpectedly small: {files:?}");
    let mut failures = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        let dir = file.parent().unwrap();
        for link in extract_links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                file.clone() // pure-anchor link into the same file
            } else {
                dir.join(path_part)
            };
            if !target.exists() {
                failures.push(format!("{}: broken link -> {link}", file.display()));
                continue;
            }
            if let Some(a) = anchor {
                if target.extension().is_some_and(|x| x == "md") {
                    let ttext = std::fs::read_to_string(&target).unwrap();
                    if !anchors(&ttext).contains(&a) {
                        failures.push(format!(
                            "{}: anchor #{a} not found in {}",
                            file.display(),
                            target.display()
                        ));
                    }
                }
            }
        }
    }
    assert!(failures.is_empty(), "broken documentation links:\n{}", failures.join("\n"));
}

#[test]
fn slug_matches_github_style() {
    assert_eq!(slug(" §7 — validation strategy"), "7--validation-strategy");
    assert_eq!(slug(" Large-message pipeline knobs"), "large-message-pipeline-knobs");
    assert_eq!(slug(" Wait-primitive catalogue"), "wait-primitive-catalogue");
}

#[test]
fn extractor_sees_links_outside_code_only() {
    let md = "see [a](x.md#y) and `[not](code.md)`\n```\n[also not](fence.md)\n```\n";
    assert_eq!(extract_links(md), vec!["x.md#y".to_string()]);
}
