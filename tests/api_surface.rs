//! Public-API snapshot gate (ISSUE 7, CI/tooling).
//!
//! The exported surface of `core`, `fabric` and `xccl` is the contract
//! every downstream crate (and the paper-reproduction scripts) builds
//! against. This test inventories every `pub` item signature in those
//! crates and diffs it against the committed snapshot in
//! `tests/api_surface.snapshot` — so an API redesign that adds, removes
//! or reshapes an exported item fails CI until the snapshot is
//! deliberately regenerated:
//!
//! ```text
//! UPDATE_API_SURFACE=1 cargo test --test api_surface
//! git add tests/api_surface.snapshot
//! ```
//!
//! The inventory is a source scan, not a compiler query: the first line
//! of each `pub fn | struct | enum | trait | type | const | static |
//! mod | use` item (crate-visible `pub(...)` forms excluded), trimmed
//! at the body brace. That is intentionally coarse — it cannot see
//! every semantic change — but it catches the redesign-shaped ones:
//! renames, signature changes, new exports, dropped exports.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// The crates whose exported surface is frozen by the snapshot.
const CRATES: &[&str] = &["crates/core/src", "crates/fabric/src", "crates/xccl/src"];

const SNAPSHOT: &str = "tests/api_surface.snapshot";

/// Every `.rs` file under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .expect("crate source dir must exist")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Does this trimmed line start a `pub` item that belongs in the
/// snapshot? Crate-internal `pub(crate)` / `pub(super)` visibility is
/// not exported surface.
fn is_pub_item(line: &str) -> bool {
    let Some(rest) = line.strip_prefix("pub ") else { return false };
    [
        "fn ",
        "async fn ",
        "unsafe fn ",
        "struct ",
        "enum ",
        "trait ",
        "type ",
        "const ",
        "static ",
        "mod ",
        "use ",
    ]
    .iter()
    .any(|kw| rest.starts_with(kw))
}

/// One snapshot line per item: `path: signature`, with the signature cut
/// at the body brace (multi-line argument lists keep only their first
/// line — enough to detect any edit to it).
fn inventory(root: &Path) -> String {
    let mut out = String::new();
    for crate_dir in CRATES {
        let mut files = Vec::new();
        rust_files(&root.join(crate_dir), &mut files);
        for file in files {
            let rel = file.strip_prefix(root).unwrap().display().to_string();
            let src = fs::read_to_string(&file).unwrap();
            for line in src.lines() {
                let t = line.trim_start();
                if is_pub_item(t) {
                    let sig = t.split(" {").next().unwrap_or(t).trim_end();
                    let sig = sig.strip_suffix('{').unwrap_or(sig).trim_end();
                    writeln!(out, "{rel}: {sig}").unwrap();
                }
            }
        }
    }
    out
}

#[test]
fn exported_surface_matches_the_committed_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let current = inventory(root);
    let snap_path = root.join(SNAPSHOT);

    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        fs::write(&snap_path, &current).unwrap();
        println!("api_surface: snapshot regenerated ({} items)", current.lines().count());
        return;
    }

    let committed = fs::read_to_string(&snap_path).unwrap_or_default();
    if committed == current {
        return;
    }

    // Line-set diff: order changes within a file are real changes too,
    // but the added/removed view is what a human needs to review.
    let old: std::collections::BTreeSet<&str> = committed.lines().collect();
    let new: std::collections::BTreeSet<&str> = current.lines().collect();
    let mut diff = String::new();
    for gone in old.difference(&new) {
        writeln!(diff, "  - {gone}").unwrap();
    }
    for added in new.difference(&old) {
        writeln!(diff, "  + {added}").unwrap();
    }
    panic!(
        "the exported surface of core/fabric/xccl changed without updating the snapshot:\n\
         {diff}\n\
         If the change is deliberate, regenerate it:\n\
         \n    UPDATE_API_SURFACE=1 cargo test --test api_surface\n\
         \nand commit {SNAPSHOT} alongside the API change."
    );
}
