//! Workspace-level integration tests: the full stack (sim → device →
//! fabric → xccl → core → apps) exercised through the facade crate, plus
//! cross-implementation equivalence checks.

use diomp::apps::cannon::{self, CannonConfig};
use diomp::apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp::core::{Binding, Conduit, DiompConfig, DiompRuntime, ReduceOp};
use diomp::device::DataMode;
use diomp::sim::{PlatformSpec, SimTime};

/// The two app implementations must produce *identical* results for the
/// same deterministic inputs (DiOMP vs MPI equivalence).
#[test]
fn diomp_and_mpi_minimod_agree_bit_for_bit() {
    // Both are independently verified against the same serial reference,
    // so transitively they agree; this runs them together as a guard.
    let cfg = MinimodConfig {
        platform: PlatformSpec::platform_b(),
        gpus: 4,
        nx: 16,
        ny: 16,
        nz: 16,
        steps: 4,
        mode: DataMode::Functional,
        verify: true,
        halo: HaloStyle::Get,
        tuned: false,
    };
    assert!(minimod::diomp::run(&cfg).verified);
    assert!(minimod::mpi::run(&cfg).verified);
}

#[test]
fn matmul_correct_on_every_platform() {
    for platform in PlatformSpec::all() {
        let cfg = CannonConfig {
            platform: platform.clone(),
            gpus: 4,
            n: 64,
            mode: DataMode::Functional,
            verify: true,
        };
        assert!(cannon::diomp::run(&cfg).verified, "DiOMP on {}", platform.name);
        assert!(cannon::mpi::run(&cfg).verified, "MPI on {}", platform.name);
    }
}

#[test]
fn full_runtime_boot_on_every_platform_and_binding() {
    for platform in PlatformSpec::all() {
        for binding in [Binding::DevicePerRank, Binding::RankPerNode] {
            let cfg = DiompConfig::builder_on(platform.clone(), 2)
                .with_binding(binding)
                .with_heap(4 << 20)
                .build();
            DiompRuntime::run(cfg, |ctx, rank| {
                let ptr = rank.alloc_sym(ctx, 1024).unwrap();
                let peer = (rank.rank + 1) % rank.nranks();
                rank.put(ctx, peer, ptr, 0, ptr, 0, 256).unwrap();
                rank.fence(ctx);
                rank.barrier(ctx);
            })
            .unwrap_or_else(|e| panic!("{} / {binding:?}: {e}", platform.name));
        }
    }
}

#[test]
fn both_conduits_run_the_same_program_on_infiniband() {
    let run = |conduit: Conduit| -> u64 {
        let t = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let t2 = t.clone();
        let cfg = DiompConfig::builder_on(PlatformSpec::platform_c(), 4)
            .with_conduit(conduit)
            .with_heap(4 << 20)
            .build();
        DiompRuntime::run(cfg, move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, 64 << 10).unwrap();
            let right = (rank.rank + 1) % rank.nranks();
            rank.put(ctx, right, ptr, 0, ptr, 0, 32 << 10).unwrap();
            rank.fence(ctx);
            rank.barrier(ctx);
            if rank.rank == 0 {
                t2.store(ctx.now().nanos(), std::sync::atomic::Ordering::Relaxed);
            }
        })
        .unwrap();
        t.load(std::sync::atomic::Ordering::Relaxed)
    };
    let gas = run(Conduit::GasnetEx);
    let gpi = run(Conduit::Gpi2);
    assert!(gas > 0 && gpi > 0);
    assert_ne!(gas, gpi, "the two conduits have distinct cost models");
}

#[test]
fn ompccl_collectives_match_host_reference_across_platforms() {
    for platform in PlatformSpec::all() {
        let cfg = DiompConfig::builder_on(platform.clone(), 2).with_heap(4 << 20).build();
        DiompRuntime::run(cfg, |ctx, rank| {
            let world = rank.shared.world_group();
            let n = rank.nranks();
            let ptr = rank.alloc_sym(ctx, 256).unwrap();
            let vals: Vec<u8> =
                (0..8).flat_map(|i| ((rank.rank + i) as f64).to_le_bytes()).collect();
            rank.write_local(rank.primary(), ptr, 0, &vals);
            rank.barrier(ctx);
            rank.allreduce(ctx, &world, ptr, 64, ReduceOp::SumF64);
            let mut out = vec![0u8; 64];
            rank.read_local(rank.primary(), ptr, 0, &mut out);
            for (i, c) in out.chunks_exact(8).enumerate() {
                let got = f64::from_le_bytes(c.try_into().unwrap());
                let want: f64 = (0..n).map(|r| (r + i) as f64).sum();
                assert_eq!(got, want);
            }
        })
        .unwrap();
    }
}

#[test]
fn whole_application_runs_are_reproducible() {
    let run = || {
        let cfg = CannonConfig {
            platform: PlatformSpec::platform_b(),
            gpus: 16,
            n: 30240,
            mode: DataMode::CostOnly,
            verify: false,
        };
        cannon::diomp::run(&cfg).elapsed
    };
    assert_eq!(run(), run(), "identical configs must give identical virtual times");
}

#[test]
fn paper_ordering_holds_end_to_end() {
    // The paper's three headline orderings, checked in one place:
    use diomp::apps::micro::{diomp_p2p_latency, mpi_p2p, RmaOp};
    let a = PlatformSpec::platform_a();

    // 1. DiOMP RMA latency < MPI RMA latency (Fig. 3).
    let d = diomp_p2p_latency(&a, RmaOp::Get, &[512]);
    let m = mpi_p2p(&a, RmaOp::Get, &[512], false);
    assert!(d[0].1 < m[0].1);

    // 2. DiOMP app ≥ MPI app at scale (Figs. 7–8).
    let cfg = MinimodConfig {
        platform: a.clone(),
        gpus: 16,
        nx: 1200,
        ny: 1200,
        nz: 1200,
        steps: 8,
        mode: DataMode::CostOnly,
        verify: false,
        halo: HaloStyle::Get,
        tuned: false,
    };
    let d = minimod::diomp::run(&cfg).elapsed;
    let m = minimod::mpi::run(&cfg).elapsed;
    assert!(d <= m, "DiOMP {d} vs MPI {m}");

    // 3. Fewer lines of code for the same exchange (Listings 1–2).
    let t = diomp::apps::loc::loc_table();
    assert!(t[3].lines >= 2 * t[2].lines - 3);
}

#[test]
fn virtual_time_is_meaningful_at_paper_scale() {
    // A 1200³ step on 16 A100s should land in the low-millisecond range —
    // the sanity anchor for every Fig. 8 number.
    let cfg = MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 16,
        nx: 1200,
        ny: 1200,
        nz: 1200,
        steps: 10,
        mode: DataMode::CostOnly,
        verify: false,
        halo: HaloStyle::Get,
        tuned: false,
    };
    let per_step = minimod::diomp::run(&cfg).elapsed.as_ms() / 10.0;
    assert!(
        (0.5..10.0).contains(&per_step),
        "per-step time {per_step:.2} ms outside the plausible band"
    );
    let _ = SimTime::ZERO;
}
