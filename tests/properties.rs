//! Property-based tests (proptest) over the core data structures and
//! whole-system invariants (DESIGN.md §7).

use diomp::core::{BuddyAlloc, LinearAlloc};
use diomp::device::FreeListAlloc;
use diomp::fabric::ReduceOp;
use diomp::sim::{BwCurve, Dur, PlatformSpec, Sim, SimChannel};
use proptest::prelude::*;

// ---------- allocator invariants ----------

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u64),
    Free(usize), // index into the held list (mod len)
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![(32u64..4096).prop_map(AllocOp::Alloc), (0usize..64).prop_map(AllocOp::Free),],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Buddy: live blocks never overlap, stay aligned to their size, and
    /// freeing everything coalesces back to one maximal block.
    #[test]
    fn buddy_allocator_invariants(ops in alloc_ops()) {
        let mut b = BuddyAlloc::new(1 << 16, 32);
        let mut held: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Some(off) = b.alloc(len) {
                        let block = b.block_size(len);
                        prop_assert_eq!(off % block, 0, "offset aligned to block size");
                        held.push(off);
                    }
                }
                AllocOp::Free(i) if !held.is_empty() => {
                    b.free(held.swap_remove(i % held.len()));
                }
                AllocOp::Free(_) => {}
            }
            let mut ranges = b.live_ranges();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0, "live blocks overlap: {:?}", w);
            }
        }
        for off in held.drain(..) {
            b.free(off);
        }
        prop_assert!(b.fully_coalesced(), "full free must coalesce completely");
        prop_assert_eq!(b.total_free(), 1 << 16);
    }

    /// Free-list allocator: allocations never overlap; free restores the
    /// full capacity.
    #[test]
    fn free_list_allocator_invariants(ops in alloc_ops()) {
        let mut a = FreeListAlloc::new(1 << 16);
        let mut held: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(off) = a.alloc(len, 64) {
                        prop_assert_eq!(off % 64, 0);
                        for &(o, l) in &held {
                            prop_assert!(off + len <= o || o + l <= off, "overlap");
                        }
                        held.push((off, len));
                    }
                }
                AllocOp::Free(i) if !held.is_empty() => {
                    let (off, _) = held.swap_remove(i % held.len());
                    a.free(off).unwrap();
                }
                AllocOp::Free(_) => {}
            }
        }
        for (off, _) in held.drain(..) {
            a.free(off).unwrap();
        }
        prop_assert_eq!(a.total_free(), 1 << 16);
        prop_assert_eq!(a.live_count(), 0);
    }

    /// Linear allocator: offsets are monotonically increasing, aligned,
    /// and within capacity.
    #[test]
    fn linear_allocator_invariants(lens in prop::collection::vec(1u64..2048, 1..64)) {
        let mut a = LinearAlloc::new(1 << 16);
        let mut last_end = 0u64;
        for len in lens {
            if let Some(off) = a.alloc(len, 64) {
                prop_assert!(off >= last_end);
                prop_assert_eq!(off % 64, 0);
                prop_assert!(off + len <= 1 << 16);
                last_end = off + len;
            }
        }
    }

    /// BwCurve interpolation stays within the convex hull of its control
    /// points and transfer time grows monotonically with size.
    #[test]
    fn bw_curve_bounded_and_monotone(sizes in prop::collection::vec(1u64..(1 << 24), 2..40)) {
        let curve = BwCurve::new(vec![(1024, 2.0), (1 << 16, 8.0), (1 << 22, 20.0)]);
        let (lo, hi) = (2.0 - 1e-9, 20.0 + 1e-9);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut last_t = -1.0;
        for s in sorted {
            let bw = curve.gbps(s);
            prop_assert!((lo..=hi).contains(&bw), "bw {bw} outside hull");
            let t = curve.time_us(s);
            prop_assert!(t >= last_t, "time must not shrink with size");
            last_t = t;
        }
    }

    /// ReduceOp::SumF64 over arbitrary chunks equals the scalar sum.
    #[test]
    fn reduce_op_matches_scalar_sum(
        a in prop::collection::vec(-1e6f64..1e6, 1..64),
        b in prop::collection::vec(-1e6f64..1e6, 1..64),
    ) {
        let n = a.len().min(b.len());
        let mut abuf: Vec<u8> = a[..n].iter().flat_map(|v| v.to_le_bytes()).collect();
        let bbuf: Vec<u8> = b[..n].iter().flat_map(|v| v.to_le_bytes()).collect();
        ReduceOp::SumF64.combine(&mut abuf, &bbuf);
        for i in 0..n {
            let got = f64::from_le_bytes(abuf[i * 8..i * 8 + 8].try_into().unwrap());
            prop_assert_eq!(got, a[i] + b[i]);
        }
    }
}

// ---------- simulation-level properties (fewer cases: each spawns a sim) --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The DES is deterministic: an arbitrary rank workload produces the
    /// same trace twice.
    #[test]
    fn des_is_deterministic(seed in 0u64..1_000_000) {
        let run = |seed: u64| {
            let mut sim = Sim::new();
            sim.enable_trace();
            let chan: SimChannel<u64> = SimChannel::new();
            for r in 0..5u64 {
                let chan = chan.clone();
                sim.spawn(format!("r{r}"), move |ctx| {
                    let mut rng = diomp::sim::rng_for(seed, r);
                    use rand::Rng;
                    for _ in 0..15 {
                        ctx.delay(Dur::nanos(rng.gen_range(1..400)));
                        chan.send(ctx.handle(), r);
                        if rng.gen_bool(0.3) {
                            let _ = chan.try_recv();
                        }
                    }
                });
            }
            let rep = sim.run().unwrap();
            (rep.end_time, rep.entries_processed,
             rep.trace.iter().map(|t| t.to_string()).collect::<Vec<_>>())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Ranged waitsome over a shuffled set of in-flight notifications
    /// drains every id exactly once, and the whole run (trace, entry
    /// count, end time) is deterministic for a given seed.
    #[test]
    fn waitsome_drains_shuffled_notifications_exactly_once(
        seed in 0u64..1_000_000,
        n in 1u32..48,
    ) {
        let run = |seed: u64| {
            let mut sim = Sim::new();
            sim.enable_trace();
            let h = sim.handle();
            let board = h.new_board();
            // Shuffle the post order and stagger arrival times so some
            // posts land while the drainer is parked and some while it
            // is busy consuming.
            let mut ids: Vec<u32> = (0..n).collect();
            let mut rng = diomp::sim::rng_for(seed, 7);
            use rand::Rng;
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.gen_range(0..(i as u64 + 1)) as usize);
            }
            let gaps: Vec<u64> = (0..n).map(|_| rng.gen_range(1..900)).collect();
            sim.spawn("poster", move |ctx| {
                for (k, id) in ids.into_iter().enumerate() {
                    ctx.delay(Dur::nanos(gaps[k]));
                    ctx.board_post(board, id, id as u64 + 1);
                }
            });
            let drained = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let drained2 = drained.clone();
            sim.spawn("drainer", move |ctx| {
                for _ in 0..n {
                    let (id, v) = ctx.board_waitsome(board, 0, n);
                    assert_eq!(v, id as u64 + 1, "value must travel with its id");
                    drained2.lock().push(id);
                }
            });
            let rep = sim.run().unwrap();
            let got = drained.lock().clone();
            (got, rep.end_time, rep.entries_processed,
             rep.trace.iter().map(|t| t.to_string()).collect::<Vec<_>>())
        };
        let (got, end, entries, trace) = run(seed);
        // Exactly-once: every id drained, none twice.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<u32>>());
        // Trace-determinism across reruns of the same seed.
        prop_assert_eq!(run(seed), (got, end, entries, trace));
    }

    /// ISSUE 6: the exactly-once waitsome guarantee survives injector
    /// perturbation. A seeded fault plan straggles the poster's compute
    /// delays and attaches an injected control-message delay to a random
    /// subset of notifications (consumed with `take_ctrl_fault` exactly
    /// as the fabric notify path does) — every id must still drain
    /// exactly once, with its value, and the perturbed run must replay
    /// deterministically for the same seed.
    #[test]
    fn waitsome_stays_exactly_once_under_injected_delays(
        seed in 0u64..1_000_000,
        n in 1u32..48,
    ) {
        use diomp::sim::{fault_key, CtrlFault, FaultPlan};

        let run = |seed: u64| {
            let mut sim = Sim::new();
            sim.enable_trace();
            let mut rng = diomp::sim::rng_for(seed, 13);
            use rand::Rng;
            let mut plan = FaultPlan::new().straggle("poster", rng.gen_range(1000..4000));
            for id in 0..n {
                if rng.gen_bool(0.4) {
                    plan = plan.ctrl_fault(
                        fault_key("board-post", 0, id as u64),
                        CtrlFault::Delay(Dur::nanos(rng.gen_range(1..2000))),
                    );
                }
            }
            sim.set_fault_plan(plan);
            let h = sim.handle();
            let board = h.new_board();
            let mut ids: Vec<u32> = (0..n).collect();
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.gen_range(0..(i as u64 + 1)) as usize);
            }
            let gaps: Vec<u64> = (0..n).map(|_| rng.gen_range(1..900)).collect();
            sim.spawn("poster", move |ctx| {
                for (k, id) in ids.into_iter().enumerate() {
                    ctx.delay(Dur::nanos(gaps[k]));
                    if let Some(CtrlFault::Delay(d)) =
                        ctx.take_ctrl_fault(fault_key("board-post", 0, id as u64))
                    {
                        ctx.delay(d);
                    }
                    ctx.board_post(board, id, id as u64 + 1);
                }
            });
            let drained = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let drained2 = drained.clone();
            sim.spawn("drainer", move |ctx| {
                for _ in 0..n {
                    let (id, v) = ctx.board_waitsome(board, 0, n);
                    assert_eq!(v, id as u64 + 1, "value must travel with its id");
                    drained2.lock().push(id);
                }
            });
            let rep = sim.run().unwrap();
            let got = drained.lock().clone();
            (got, rep.end_time, rep.entries_processed,
             rep.trace.iter().map(|t| t.to_string()).collect::<Vec<_>>())
        };
        let (got, end, entries, trace) = run(seed);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<u32>>());
        prop_assert_eq!(run(seed), (got, end, entries, trace));
    }

    /// MPI allreduce equals the sequential reduction for arbitrary rank
    /// counts (including non-powers-of-two) and payload lengths.
    #[test]
    fn mpi_allreduce_matches_reference(nranks in 2usize..9, elems in 1usize..48) {
        use diomp::device::{DataMode, DeviceTable};
        use diomp::fabric::{FabricWorld, Loc, MpiRank};
        use diomp::sim::{ClusterSpec, Topology};
        use std::sync::Arc;

        let mut sim = Sim::new();
        let spec = ClusterSpec {
            platform: PlatformSpec::platform_a(),
            nodes: nranks,
            gpus_per_node: 1,
        };
        let topo = Arc::new(Topology::build(&sim.handle(), spec));
        let devs =
            DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(1 << 20));
        let world = FabricWorld::new(topo, devs, nranks);
        let ok = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for r in 0..nranks {
            let world = world.clone();
            let ok = ok.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                let mut mpi = MpiRank::new(world.clone(), r);
                let dev = world.primary_dev(r).clone();
                let off = dev.malloc((elems * 8) as u64, 256).unwrap();
                let bytes: Vec<u8> =
                    (0..elems).flat_map(|i| ((r * 3 + i) as f64).to_le_bytes()).collect();
                dev.mem.write(off, &bytes).unwrap();
                mpi.allreduce(ctx, Loc::dev(r, off), (elems * 8) as u64, ReduceOp::SumF64)
                    .unwrap();
                let mut out = vec![0u8; elems * 8];
                dev.mem.read(off, &mut out).unwrap();
                for i in 0..elems {
                    let got = f64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
                    let want: f64 = (0..nranks).map(|k| (k * 3 + i) as f64).sum();
                    assert!((got - want).abs() < 1e-9, "elem {i}: {got} vs {want}");
                }
                ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(ok.load(std::sync::atomic::Ordering::Relaxed), nranks);
    }

    /// Group split partitions the world: every rank lands in exactly one
    /// group, groups are disjoint, and their union is the world.
    #[test]
    fn group_split_partitions_the_world(colors in prop::collection::vec(0u32..3, 8..9)) {
        use diomp::core::{group_split, DiompConfig, DiompRuntime};
        use std::sync::Arc;

        let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), 2).with_heap(2 << 20).build();
        let colors = Arc::new(colors);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let colors2 = colors.clone();
        DiompRuntime::run(cfg, move |ctx, rank| {
            let world = rank.shared.world_group();
            let color = colors2[rank.rank];
            let g = group_split(
                ctx,
                &rank.shared.groups,
                &world,
                rank.rank,
                color,
                rank.rank as u32,
            );
            seen2.lock().push((rank.rank, color, g.ranks.clone()));
        })
        .unwrap();
        let seen = seen.lock();
        prop_assert_eq!(seen.len(), 8);
        for (rank, color, members) in seen.iter() {
            prop_assert!(members.contains(rank), "rank {} not in its own group", rank);
            for m in members {
                prop_assert_eq!(colors[*m], *color, "member of wrong colour");
            }
            let expect: Vec<usize> =
                (0..8).filter(|&r| colors[r] == *color).collect();
            prop_assert_eq!(members.clone(), expect, "membership must be exactly the colour class");
        }
    }

    /// Chunked-pipeline puts deposit byte-identical data to monolithic
    /// puts for arbitrary message lengths and chunk sizes, including
    /// chunk sizes above the Platform A anomaly floor (host-staged
    /// regime) and below it (direct regime), with arbitrary tails.
    #[test]
    fn chunked_put_matches_monolithic(
        len in 1u64..(256 << 10),
        chunk in 1u64..(48 << 10),
        max_inflight in 1usize..5,
    ) {
        use diomp::core::{DiompConfig, DiompRuntime, PipelineConfig};
        use diomp::sim::ClusterSpec;
        use std::sync::Arc;

        let run = |pipeline: PipelineConfig| {
            let cfg = DiompConfig::builder(ClusterSpec {
                platform: PlatformSpec::platform_a(),
                nodes: 2,
                gpus_per_node: 1,
            })
            .with_heap(2 << 20)
            .with_pipeline(pipeline).build();
            let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = out.clone();
            DiompRuntime::run(cfg, move |ctx, rank| {
                let ptr = rank.alloc_sym(ctx, len).unwrap();
                if rank.rank == 0 {
                    let bytes: Vec<u8> =
                        (0..len as usize).map(|i| (i.wrapping_mul(13) + 5) as u8).collect();
                    rank.write_local(rank.primary(), ptr, 0, &bytes);
                }
                rank.barrier(ctx);
                if rank.rank == 0 {
                    rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
                    rank.fence(ctx);
                }
                rank.barrier(ctx);
                if rank.rank == 1 {
                    let mut got = vec![0u8; len as usize];
                    rank.read_local(rank.primary(), ptr, 0, &mut got);
                    *out2.lock() = got;
                }
            })
            .unwrap();
            let bytes = out.lock().clone();
            bytes
        };
        let chunked = run(PipelineConfig { chunk_bytes: chunk, max_inflight, n_queues: 4 });
        let mono = run(PipelineConfig::disabled());
        prop_assert_eq!(&chunked, &mono, "chunked and monolithic puts must agree");
        let expect: Vec<u8> =
            (0..len as usize).map(|i| (i.wrapping_mul(13) + 5) as u8).collect();
        prop_assert_eq!(chunked, expect);
    }

    /// The emergent ring engine deposits the same bytes as the profile
    /// engine for arbitrary pipeline shapes through the full DiOMP
    /// runtime (`ompx_allreduce` on the world group), and both match the
    /// sequential reference.
    #[test]
    fn ring_engine_allreduce_matches_profile_engine(
        nodes in 1usize..3,
        elems in 1usize..24,
        chunk in 1u64..512,
        inflight in 1usize..4,
    ) {
        use diomp::core::{CollEngine, DiompConfig, DiompRuntime, RingConfig};
        use std::sync::Arc;

        let run = |engine: CollEngine| {
            let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), nodes)
                .with_heap(2 << 20)
                .with_coll_engine(engine).build();
            let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = out.clone();
            DiompRuntime::run(cfg, move |ctx, rank| {
                let world = rank.shared.world_group();
                let ptr = rank.alloc_sym(ctx, (elems * 8) as u64).unwrap();
                let bytes: Vec<u8> = (0..elems)
                    .flat_map(|i| ((rank.rank * 5 + 3 * i) as u64).to_le_bytes())
                    .collect();
                rank.write_local(rank.primary(), ptr, 0, &bytes);
                rank.barrier(ctx);
                rank.allreduce(ctx, &world, ptr, (elems * 8) as u64, ReduceOp::SumU64);
                let mut got = vec![0u8; elems * 8];
                rank.read_local(rank.primary(), ptr, 0, &mut got);
                out2.lock().push((rank.rank, got));
            })
            .unwrap();
            let mut rows = out.lock().clone();
            rows.sort_by_key(|&(r, _)| r);
            rows
        };
        let ring = run(CollEngine::Ring(RingConfig { chunk_bytes: chunk, max_inflight: inflight }));
        let prof = run(CollEngine::Profile);
        prop_assert_eq!(&ring, &prof, "ring and profile engines must agree");
        let n = ring.len();
        for (rank, got) in &ring {
            for i in 0..elems {
                let v = u64::from_le_bytes(got[i * 8..i * 8 + 8].try_into().unwrap());
                let want: u64 = (0..n).map(|r| (r * 5 + 3 * i) as u64).sum();
                prop_assert_eq!(v, want, "rank {} elem {}", rank, i);
            }
        }
    }

    /// XCCL allreduce equals the sequential reduction for arbitrary
    /// device counts and payloads (through the full DiOMP runtime).
    #[test]
    fn ompccl_allreduce_matches_reference(nodes in 1usize..3, elems in 1usize..24) {
        use diomp::core::{DiompConfig, DiompRuntime};

        let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), nodes).with_heap(2 << 20).build();
        DiompRuntime::run(cfg, move |ctx, rank| {
            let world = rank.shared.world_group();
            let n = rank.nranks();
            let ptr = rank.alloc_sym(ctx, (elems * 8) as u64).unwrap();
            let bytes: Vec<u8> =
                (0..elems).flat_map(|i| ((rank.rank + 2 * i) as f64).to_le_bytes()).collect();
            rank.write_local(rank.primary(), ptr, 0, &bytes);
            rank.barrier(ctx);
            rank.allreduce(ctx, &world, ptr, (elems * 8) as u64, ReduceOp::SumF64);
            let mut out = vec![0u8; elems * 8];
            rank.read_local(rank.primary(), ptr, 0, &mut out);
            for i in 0..elems {
                let got = f64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
                let want: f64 = (0..n).map(|r| (r + 2 * i) as f64).sum();
                assert_eq!(got, want);
            }
        })
        .unwrap();
    }

    /// ISSUE 4: the transport autotuner changes *when* bytes move, never
    /// *which* bytes — a tuned config (knee-derived pipeline + protocol-
    /// selecting collectives) produces byte-identical put/get transfer
    /// contents and collective results to the untuned default across
    /// random sizes, dtypes and rank counts, on both a host-capped
    /// (A: staged put/get pipelines) and an uncapped (C) platform.
    #[test]
    fn tuned_config_is_byte_identical_to_default(
        len in 1u64..(2 << 20),
        nodes in 1usize..3,
        elems in 1usize..24,
        platform_c in 0u8..2,
        which in 0u8..3,
    ) {
        use diomp::core::{DiompConfig, DiompRuntime};
        use diomp::sim::ClusterSpec;
        use std::sync::Arc;

        let dtype = [ReduceOp::SumU64, ReduceOp::SumF32, ReduceOp::MaxF64][which as usize];
        let platform = if platform_c == 1 {
            PlatformSpec::platform_c()
        } else {
            PlatformSpec::platform_a()
        };
        // RMA transfer contents: rank 0 puts into 1, then gets back from
        // the last rank, under tuned vs default.
        let p2p = |tuned: bool| {
            let cluster =
                ClusterSpec { platform: platform.clone(), nodes: 2, gpus_per_node: 1 };
            let cfg = DiompConfig::builder(cluster).with_heap(8 << 20);
            let cfg = if tuned { cfg.tuned() } else { cfg }.build();
            let out = Arc::new(parking_lot::Mutex::new((Vec::new(), Vec::new())));
            let out2 = out.clone();
            DiompRuntime::run(cfg, move |ctx, rank| {
                let ptr = rank.alloc_sym(ctx, len).unwrap();
                let fill: Vec<u8> =
                    (0..len as usize).map(|i| (i.wrapping_mul(17) + rank.rank * 3) as u8).collect();
                rank.write_local(rank.primary(), ptr, 0, &fill);
                rank.barrier(ctx);
                if rank.rank == 0 {
                    rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
                    rank.fence(ctx);
                }
                rank.barrier(ctx);
                if rank.rank == 0 {
                    rank.get(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
                    rank.fence(ctx);
                }
                rank.barrier(ctx);
                let mut got = vec![0u8; len as usize];
                rank.read_local(rank.primary(), ptr, 0, &mut got);
                let mut o = out2.lock();
                if rank.rank == 0 { o.0 = got } else if rank.rank == 1 { o.1 = got }
            })
            .unwrap();
            let v = out.lock().clone();
            v
        };
        prop_assert_eq!(p2p(true), p2p(false), "tuned RMA must move identical bytes");

        // Collective results: integer-valued payloads make every
        // association order exact, so tree- and chain-order reductions
        // must agree bit-for-bit.
        let coll = |tuned: bool| {
            let cfg = DiompConfig::builder_on(platform.clone(), nodes).with_heap(2 << 20);
            let cfg = if tuned { cfg.tuned() } else { cfg }.build();
            let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = out.clone();
            DiompRuntime::run(cfg, move |ctx, rank| {
                let world = rank.shared.world_group();
                let ptr = rank.alloc_sym(ctx, (elems * 8) as u64).unwrap();
                let gen = |i: usize| ((rank.rank * 7 + i * 3) % 64) as u64;
                let bytes: Vec<u8> = match dtype {
                    ReduceOp::SumF32 => {
                        (0..elems * 2).flat_map(|i| (gen(i) as f32).to_le_bytes()).collect()
                    }
                    _ => (0..elems).flat_map(|i| gen(i).to_le_bytes()).collect(),
                };
                rank.write_local(rank.primary(), ptr, 0, &bytes);
                rank.barrier(ctx);
                rank.allreduce(ctx, &world, ptr, (elems * 8) as u64, dtype);
                rank.bcast(ctx, &world, 0, ptr, (elems * 8) as u64);
                let mut got = vec![0u8; elems * 8];
                rank.read_local(rank.primary(), ptr, 0, &mut got);
                out2.lock().push((rank.rank, got));
            })
            .unwrap();
            let mut rows = out.lock().clone();
            rows.sort_by_key(|&(r, _)| r);
            rows
        };
        prop_assert_eq!(coll(true), coll(false), "tuned collectives must land identical bytes");
    }
}

// ---------- ISSUE 4: tuned minimod wavefields ----------

/// The tuned transport must not perturb an application's physics: the
/// minimod wavefield is byte-identical under tuned and default configs,
/// and the tuned run is trace-deterministic (same entry count and
/// elapsed time on replay).
#[test]
fn tuned_minimod_wavefield_is_byte_identical_and_deterministic() {
    use diomp::apps::minimod::{self, HaloStyle, MinimodConfig};
    use diomp::device::DataMode;

    let cfg = |tuned: bool| MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 4,
        nx: 24,
        ny: 24,
        nz: 48,
        steps: 3,
        mode: DataMode::Functional,
        verify: false,
        halo: HaloStyle::Get,
        tuned,
    };
    let tuned_a = minimod::diomp::run(&cfg(true));
    let tuned_b = minimod::diomp::run(&cfg(true));
    let default = minimod::diomp::run(&cfg(false));
    let wf_tuned = tuned_a.wavefield.expect("functional run captures the wavefield");
    assert_eq!(
        Some(&wf_tuned),
        default.wavefield.as_ref(),
        "tuned and default wavefields must be byte-identical"
    );
    assert_eq!(tuned_a.elapsed, tuned_b.elapsed, "tuned run must replay identically");
    assert_eq!(tuned_a.entries, tuned_b.entries);
    assert_eq!(Some(wf_tuned), tuned_b.wavefield);
}

// ---------- ISSUE 5: dispatch-boundary continuity ----------

/// The three-regime dispatcher must be seamless: at the power-of-two
/// sizes straddling each crossover (LL→DBT and DBT→ring) the modelled
/// latency may not cliff — the step up in size costs at most the size
/// ratio plus protocol overhead, and `Auto` never loses to the pure
/// ring engine on either side of either boundary, on all three paper
/// platforms at Fig. 6 scale.
#[test]
fn auto_dispatch_has_no_cliff_at_regime_boundaries() {
    use diomp::apps::micro::{diomp_collective_auto, diomp_collective_full, fig6_nodes, CollKind};
    use diomp::core::{
        crossover_bytes, dbt_crossover_bytes, default_nrings, CollEngine, Conduit, Tuner, XcclOp,
    };

    for platform in
        [PlatformSpec::platform_a(), PlatformSpec::platform_b(), PlatformSpec::platform_c()]
    {
        let nodes = fig6_nodes(&platform);
        let n = nodes * platform.gpus_per_node;
        let nrings = default_nrings(&platform);
        let ac = Tuner::new(&platform, Conduit::GasnetEx).auto_config();
        let op = XcclOp::AllReduce { op: ReduceOp::SumF32 };
        let ll_cut = crossover_bytes(&platform, &op, n, nrings, &ac);
        let dbt_cut = dbt_crossover_bytes(&platform, &op, n, nrings, &ac).max(ll_cut);
        assert!(ll_cut > 0, "{}: LL regime must be non-empty", platform.name);

        let mut boundaries = vec![ll_cut];
        if dbt_cut > ll_cut {
            boundaries.push(dbt_cut);
        }
        for cut in boundaries {
            // `cut` is the last size of the lower regime; twice it is
            // the first power-of-two size of the upper regime.
            let sizes = [cut, 2 * cut];
            let auto = diomp_collective_auto(&platform, nodes, CollKind::AllReduce, &sizes);
            let ring = diomp_collective_full(
                &platform,
                nodes,
                CollKind::AllReduce,
                &sizes,
                CollEngine::default(),
            );
            let (below, above) = (auto[0].1, auto[1].1);
            assert!(
                above <= 4.0 * below,
                "{} boundary {cut}: latency cliffs {below:.1}µs -> {above:.1}µs",
                platform.name
            );
            for (&(s, auto_us, _), &(_, ring_us, _)) in auto.iter().zip(&ring) {
                assert!(
                    auto_us <= ring_us * 1.01,
                    "{} @{s}: Auto ({auto_us:.1}µs) must not lose to the ring ({ring_us:.1}µs) \
                     at a regime boundary",
                    platform.name
                );
            }
        }
    }
}

// ---------- ISSUE 8: in-network reduction offload ----------

/// Boot a server-equipped Auto communicator (trailing `servers` nodes
/// carved out via `ServerSpec::tail`) under `plan` and return its live
/// regime triple `(ll_cut, dbt_cut, rsv_cut)` — the boundaries the
/// dispatcher actually prices at query time, health vector included.
fn server_cuts(
    platform: &diomp::sim::PlatformSpec,
    clients: usize,
    servers: usize,
    plan: &diomp::sim::FaultPlan,
) -> (u64, u64, u64) {
    use diomp::device::{DataMode, DeviceTable};
    use diomp::fabric::{FabricWorld, ReduceOp};
    use diomp::sim::{ClusterSpec, Topology};
    use diomp::xccl::{AutoConfig, CollEngine, CommOpts, ServerSpec, UniqueId, XcclComm, XcclOp};
    use std::sync::Arc;

    let nodes = clients + servers;
    let gpn = platform.gpus_per_node;
    let nranks = nodes * gpn;
    let mut sim = Sim::new();
    sim.set_fault_plan(plan.clone());
    let spec = ClusterSpec { platform: platform.clone(), nodes, gpus_per_node: gpn };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::CostOnly, Some(1 << 20));
    let world = FabricWorld::new(topo, devs, nranks);
    world.refresh_health_from_plan(plan);
    let id = UniqueId::generate();
    let out = Arc::new(parking_lot::Mutex::new((0u64, 0u64, 0u64)));
    let out2 = out.clone();
    let ac = AutoConfig::for_platform(platform);
    for r in 0..nranks {
        let world = world.clone();
        let out2 = out2.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..nranks).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts {
                    engine: CollEngine::Auto(ac),
                    servers: ServerSpec::tail(servers),
                    ..CommOpts::default()
                },
            );
            if r == 0 {
                *out2.lock() = comm
                    .auto_regimes(&XcclOp::AllReduce { op: ReduceOp::SumF32 })
                    .expect("Auto engine always has regimes");
            }
        });
    }
    sim.run().unwrap();
    let v = *out.lock();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The reduction-server offload changes *where* the fold runs, never
    /// its result: across random payload lengths, dtypes, cluster sizes
    /// and server counts, every client rank lands bytes identical to the
    /// sequential client-order fold, every server buffer passes through
    /// untouched, and the same inputs replay the same virtual-time trace.
    #[test]
    fn rserver_offload_is_byte_identical_and_deterministic(
        nodes in 3usize..5,
        servers in 1usize..3,
        elems in 1usize..64,
        which in 0u8..4,
    ) {
        use diomp::device::{DataMode, DeviceTable};
        use diomp::fabric::{FabricWorld, ReduceOp};
        use diomp::sim::{ClusterSpec, PlatformSpec, SimTime, Topology};
        use diomp::xccl::{
            CollEngine, CommOpts, DeviceBuf, RingConfig, ServerSpec, UniqueId, XcclComm, XcclOp,
        };
        use std::sync::Arc;

        let dtype =
            [ReduceOp::SumF64, ReduceOp::SumF32, ReduceOp::MaxF64, ReduceOp::SumU64]
                [which as usize];
        let platform = PlatformSpec::platform_a();
        let gpn = platform.gpus_per_node;
        let nranks = nodes * gpn;
        let nclients = (nodes - servers) * gpn;
        let len = (elems * 8) as u64;
        // Integer-valued payloads small enough to be exact in f32, so
        // every association order the schedule produces is bit-exact.
        let gen = |r: usize, i: usize| ((r as u64 + 1) * (i as u64 % 13 + 1)) as f64;
        let encode = |r: usize| -> Vec<u8> {
            match dtype {
                ReduceOp::SumF32 => {
                    (0..elems * 2).flat_map(|i| (gen(r, i) as f32).to_le_bytes()).collect()
                }
                ReduceOp::SumU64 => {
                    (0..elems).flat_map(|i| (gen(r, i) as u64).to_le_bytes()).collect()
                }
                _ => (0..elems).flat_map(|i| gen(r, i).to_le_bytes()).collect(),
            }
        };
        let fold = |i: usize| -> f64 {
            match dtype {
                ReduceOp::MaxF64 => gen(nclients - 1, i),
                _ => (0..nclients).map(|r| gen(r, i)).sum(),
            }
        };
        let expect_client: Vec<u8> = match dtype {
            ReduceOp::SumF32 => {
                (0..elems * 2).flat_map(|i| (fold(i) as f32).to_le_bytes()).collect()
            }
            ReduceOp::SumU64 => (0..elems).flat_map(|i| (fold(i) as u64).to_le_bytes()).collect(),
            _ => (0..elems).flat_map(|i| fold(i).to_le_bytes()).collect(),
        };

        let run = || -> (SimTime, Vec<Vec<u8>>) {
            let mut sim = Sim::new();
            let spec = ClusterSpec { platform: platform.clone(), nodes, gpus_per_node: gpn };
            let topo = Arc::new(Topology::build(&sim.handle(), spec));
            let devs =
                DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(1 << 20));
            let world = FabricWorld::new(topo, devs, nranks);
            let id = UniqueId::generate();
            let results = Arc::new(parking_lot::Mutex::new(vec![Vec::new(); nranks]));
            for r in 0..nranks {
                let world = world.clone();
                let results = results.clone();
                let bytes = encode(r);
                sim.spawn(format!("rank{r}"), move |ctx| {
                    let bits =
                        world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
                    let comm = XcclComm::init(
                        ctx,
                        &world,
                        (0..nranks).collect(),
                        r,
                        UniqueId::from_bits(bits),
                        CommOpts {
                            engine: CollEngine::ReductionServer(RingConfig::default()),
                            servers: ServerSpec::tail(servers),
                            ..CommOpts::default()
                        },
                    );
                    let dev = world.primary_dev(r);
                    let off = dev.malloc(len, 256).unwrap();
                    dev.mem.write(off, &bytes).unwrap();
                    comm.collective(
                        ctx,
                        r,
                        vec![DeviceBuf { flat: r, off }],
                        XcclOp::AllReduce { op: dtype },
                        len,
                    );
                    let mut out = vec![0u8; len as usize];
                    dev.mem.read(off, &mut out).unwrap();
                    results.lock()[r] = out;
                });
            }
            let end = sim.run().unwrap().end_time;
            let rows = results.lock().clone();
            (end, rows)
        };
        let (end_a, rows) = run();
        for (r, got) in rows.iter().enumerate() {
            if r < nclients {
                prop_assert_eq!(
                    got, &expect_client,
                    "client rank {} diverged from the client-order fold ({:?})", r, dtype
                );
            } else {
                prop_assert_eq!(
                    got, &encode(r),
                    "server rank {} buffer must pass through untouched ({:?})", r, dtype
                );
            }
        }
        let (end_b, rows_b) = run();
        prop_assert_eq!(end_a, end_b, "same inputs must replay the same virtual-time trace");
        prop_assert_eq!(rows, rows_b);
    }
}

/// The fourth regime boundary is seamless too: at the power-of-two
/// sizes straddling the live `rsv_cut` on a server-provisioned cluster,
/// the modelled latency may not cliff, and `Auto` never loses to the
/// pure ring engine on either side — on all three paper platforms.
#[test]
fn auto_dispatch_has_no_cliff_at_the_server_boundary() {
    use diomp::apps::micro::{diomp_collective_served, CollKind};
    use diomp::core::{CollEngine, Conduit, Tuner};
    use diomp::sim::{FaultPlan, PlatformSpec};

    for (platform, clients, servers) in [
        (PlatformSpec::platform_a(), 8usize, 8usize),
        (PlatformSpec::platform_b(), 4, 4),
        (PlatformSpec::platform_c(), 8, 8),
    ] {
        let (_, dbt_cut, rsv_cut) = server_cuts(&platform, clients, servers, &FaultPlan::new());
        assert!(
            rsv_cut > dbt_cut,
            "{}: a provisioned {clients}+{servers} layout must open the server regime \
             strictly above the mid band (rsv_cut {rsv_cut} vs dbt_cut {dbt_cut})",
            platform.name
        );
        let above = rsv_cut.next_power_of_two();
        let sizes = [above / 2, above];
        let nodes = clients + servers;
        let tuner = Tuner::new(&platform, Conduit::GasnetEx);
        let auto = diomp_collective_served(
            &platform,
            nodes,
            servers,
            CollKind::AllReduce,
            &sizes,
            tuner.coll_engine(),
        );
        let ring = diomp_collective_served(
            &platform,
            nodes,
            servers,
            CollKind::AllReduce,
            &sizes,
            CollEngine::default(),
        );
        let (below_us, above_us) = (auto[0].1, auto[1].1);
        assert!(
            above_us <= 4.0 * below_us,
            "{} boundary {rsv_cut}: latency cliffs {below_us:.1}µs -> {above_us:.1}µs",
            platform.name
        );
        for (&(s, auto_us, _), &(_, ring_us, _)) in auto.iter().zip(&ring) {
            assert!(
                auto_us <= ring_us * 1.01,
                "{} @{s}: Auto ({auto_us:.1}µs) must not lose to the ring ({ring_us:.1}µs) \
                 at the server boundary",
                platform.name
            );
        }
    }
}

/// The fourth boundary is priced from the *live* configuration, not a
/// frozen table: shrinking the live server set to the point where the
/// servers are injection-bound closes the regime outright, and a
/// degraded fabric (which reprices the ring/DBT terms the boundary is
/// clamped against) retreats it toward smaller sizes.
#[test]
fn server_crossover_tracks_the_live_ring_and_server_config() {
    use diomp::device::{DataMode, DeviceTable};
    use diomp::sim::{ClusterSpec, FaultPlan, PlatformSpec, SimTime, Topology};
    use std::sync::Arc;

    let platform = PlatformSpec::platform_a();
    let (clients, servers) = (8usize, 8usize);
    let gpn = platform.gpus_per_node;
    let healthy = server_cuts(&platform, clients, servers, &FaultPlan::new());
    assert!(healthy.2 > healthy.1, "healthy 8+8 must open the server regime: {healthy:?}");

    // Build the fault plans against a probe topology (same shape the
    // runs boot, so flat device ids line up).
    let probe = Sim::new();
    let spec =
        ClusterSpec { platform: platform.clone(), nodes: clients + servers, gpus_per_node: gpn };
    let topo = Arc::new(Topology::build(&probe.handle(), spec));
    let devs = DeviceTable::build(&probe.handle(), topo.clone(), DataMode::CostOnly, Some(1 << 20));
    let mut half = FaultPlan::new();
    for f in (clients + servers / 2) * gpn..(clients + servers) * gpn {
        half = half.kill_link(devs.dev(f).nic);
    }
    let mut degraded = FaultPlan::new();
    for f in 0..(clients + servers) * gpn {
        degraded = degraded.degrade_link(devs.dev(f).nic, SimTime::ZERO, SimTime(u64::MAX), 50);
    }
    drop(probe);

    // Half the server nodes dead: 32 client NICs feed 16 server NICs,
    // the servers are injection-bound, the priced win region vanishes —
    // the dispatcher must close the regime rather than offload at a loss.
    let shrunk = server_cuts(&platform, clients, servers, &half);
    assert_eq!(
        shrunk.2, 0,
        "an injection-bound live server set must close the fourth regime: {shrunk:?}"
    );

    // A fabric degraded to 5% of nominal bandwidth reprices every
    // boundary; the server cut must move with the live pricing (here:
    // retreat with the clamped mid band), never stay frozen.
    let repriced = server_cuts(&platform, clients, servers, &degraded);
    assert!(
        repriced.2 > 0 && repriced.2 < healthy.2,
        "a 20x slower wire must retreat the server boundary: {repriced:?} vs {healthy:?}"
    );
}

// ---------- ISSUE 7: multi-tenant shared-fabric contention ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The per-link weighted fair queue is work-conserving and loses no
    /// virtual time across flow merges and splits: under an arbitrary
    /// mix of flows, weights and staggered arrivals, every issued byte
    /// is delivered, the link never beats its capacity, and everything
    /// drains by "last arrival + serial service of all bytes" (plus at
    /// most one nanosecond of ceil rounding per completion).
    #[test]
    fn contention_is_work_conserving_under_random_flows(
        weights in prop::collection::vec(50u32..5000, 2..6),
        draws in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        use diomp::sim::{derive_seed, SimTime};
        // Decode each raw draw into (flow, bytes, arrival) — the vendored
        // proptest shim has no tuple strategies.
        let transfers: Vec<(usize, u64, u64)> = draws
            .iter()
            .map(|&d| {
                (
                    (d % 8) as usize,
                    1 + derive_seed(d, 1) % ((4 << 20) - 1),
                    derive_seed(d, 2) % 50_000,
                )
            })
            .collect();
        let bpns = 25.0; // one 25 GB/s NIC port
        let mut sim = Sim::new();
        sim.enable_contention();
        let h = sim.handle();
        let res = h.new_resource(bpns, Dur::ZERO);
        let flows: Vec<_> = weights.iter().map(|&w| h.new_flow(w)).collect();
        let mut issued = 0u64;
        let mut last_arrival = 0u64;
        for (i, &(f, bytes, arrive)) in transfers.iter().enumerate() {
            let flow = flows[f % flows.len()];
            issued += bytes;
            last_arrival = last_arrival.max(arrive);
            let h = sim.handle();
            sim.spawn(format!("t{i}"), move |ctx| {
                ctx.delay(Dur::nanos(arrive));
                let ev = h.transfer_qos(res, flow, ctx.now(), bytes);
                ctx.wait_free(ev);
            });
        }
        let end = sim.run().unwrap().end_time;
        let stats: Vec<_> = flows.iter().map(|&f| h.flow_stats(f)).collect();

        let delivered: u64 = stats.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(delivered, issued, "flow stats must account for every issued byte");

        // Work conservation: the wire never idles while any flow is
        // backlogged, so the whole mix drains within the serial service
        // time of the last-arriving backlog. Each completion is ceil'd
        // to a whole nanosecond, which can idle the link < 1 ns per
        // transfer — that is the only slack allowed.
        let service_ns = (issued as f64 / bpns).ceil() as u64;
        let slack = 2 * transfers.len() as u64 + 4;
        prop_assert!(
            end <= SimTime(last_arrival + service_ns + slack),
            "fair queue lost virtual time: end {:?} > last arrival {} + service {} + slack {}",
            end, last_arrival, service_ns, slack
        );

        // And the converse: the fluid shares may never sum past link
        // capacity, so the busy span is at least the serial service time
        // of what was delivered.
        let first = stats.iter().filter_map(|s| s.first_start).min().expect("flows ran");
        let last = stats.iter().map(|s| s.last_depart).max().expect("flows ran");
        let span_ns = last.since(first).as_nanos();
        prop_assert!(
            issued as f64 <= bpns * (span_ns as f64 + 2.0),
            "fair queue beat link capacity: {} bytes in {} ns at {} B/ns",
            issued, span_ns, bpns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Data semantics are independent of contention: randomized
    /// concurrent jobs — each with its own communicator, engine, QoS
    /// class and seeded arrival, all colliding on one armed fabric —
    /// still produce allreduce results byte-identical to the sequential
    /// reference on every rank (payloads are integer-valued f64s, so
    /// every association order is exact).
    #[test]
    fn engines_stay_byte_identical_under_concurrent_jobs(seed in 0u64..1_000_000) {
        use std::sync::Arc;
        use diomp::device::{DataMode, DeviceTable};
        use diomp::fabric::FabricWorld;
        use diomp::sim::{derive_seed, ClusterSpec, Topology};
        use diomp::xccl::{
            AutoConfig, CollEngine, CommOpts, DeviceBuf, QosClass, RingConfig, UniqueId,
            XcclComm, XcclOp,
        };
        use parking_lot::Mutex;

        const NODES: usize = 2;
        const NJOBS: usize = 3;
        let platform = PlatformSpec::platform_a();
        let nranks = NODES * platform.gpus_per_node;
        let engines = [
            CollEngine::Ring(RingConfig::default()),
            CollEngine::Dbt(RingConfig::default()),
            CollEngine::Auto(AutoConfig::for_platform(&platform)),
        ];
        let classes = [QosClass::High, QosClass::Normal, QosClass::Low];

        let mut sim = Sim::new();
        sim.enable_contention();
        let cluster = ClusterSpec {
            platform: platform.clone(),
            nodes: NODES,
            gpus_per_node: platform.gpus_per_node,
        };
        let topo = Arc::new(Topology::build(&sim.handle(), cluster));
        let devs =
            DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(16 << 20));
        let world = FabricWorld::new(topo, devs, nranks);

        let results: Arc<Mutex<Vec<Vec<Vec<f64>>>>> =
            Arc::new(Mutex::new(vec![vec![Vec::new(); nranks]; NJOBS]));
        let mut lens = Vec::new();
        for job in 0..NJOBS {
            let h = derive_seed(seed, 0x10B + job as u64);
            let len = 8 << (10 + h % 6); // 8 KiB .. 256 KiB, seeded
            lens.push(len);
            let engine = engines[job % engines.len()];
            let qos = classes[(h >> 8) as usize % classes.len()];
            let arrival = Dur::nanos(derive_seed(h, 1) % 100_000);
            let id = UniqueId::generate();
            for r in 0..nranks {
                let world = world.clone();
                let results = results.clone();
                sim.spawn(format!("job{job}-rank{r}"), move |ctx| {
                    ctx.delay(arrival);
                    let comm = XcclComm::init(
                        ctx,
                        &world,
                        (0..nranks).collect(),
                        r,
                        id,
                        CommOpts { engine, qos, ..CommOpts::default() },
                    );
                    let dev = world.primary_dev(r);
                    let off = dev.malloc(len, 256).unwrap();
                    let vals: Vec<u8> = (0..len / 8)
                        .flat_map(|i| {
                            ((job as u64 + 1) * (r as u64 + 1) * (i % 13 + 1)) as f64
                        }.to_le_bytes())
                        .collect();
                    dev.mem.write(off, &vals).unwrap();
                    comm.collective(
                        ctx,
                        r,
                        vec![DeviceBuf { flat: r, off }],
                        XcclOp::AllReduce { op: ReduceOp::SumF64 },
                        len,
                    );
                    let mut out = vec![0u8; len as usize];
                    dev.mem.read(off, &mut out).unwrap();
                    results.lock()[job][r] = out
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                });
            }
        }
        sim.run().unwrap();

        for (job, per_rank) in results.lock().iter().enumerate() {
            let expect: Vec<f64> = (0..lens[job] / 8)
                .map(|i| {
                    (1..=nranks as u64)
                        .map(|r| ((job as u64 + 1) * r * (i % 13 + 1)) as f64)
                        .sum()
                })
                .collect();
            for (r, got) in per_rank.iter().enumerate() {
                prop_assert_eq!(
                    got, &expect,
                    "seed {}: job {} rank {} diverged under contention", seed, job, r
                );
            }
        }
    }
}
